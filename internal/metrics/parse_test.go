package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestParseTextRoundTrip feeds the parser the registry's own render —
// the invariant `saprox status` depends on.
func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "with \"quotes\" and back\\slash", Labels{"k": `v"1\2`}).Add(3)
	r.Gauge("b", "a gauge", Labels{"x": "1", "y": "2"}).Set(-1.5)
	r.Gauge("c", "bare", nil).Set(42)
	h := r.Histogram("lat_seconds", "latency", Labels{"op": "fetch"})
	h.Observe(0.25)

	sc, err := ParseText(strings.NewReader(r.Render()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := sc.Value("a_total", Labels{"k": `v"1\2`}); !ok || v != 3 {
		t.Fatalf("a_total = %v, %v (escaped label value mangled)", v, ok)
	}
	if v, ok := sc.Value("b", Labels{"x": "1", "y": "2"}); !ok || v != -1.5 {
		t.Fatalf("b = %v, %v", v, ok)
	}
	if v, ok := sc.Value("c", nil); !ok || v != 42 {
		t.Fatalf("c = %v, %v", v, ok)
	}
	if sc.Types["lat_seconds"] != "histogram" {
		t.Fatalf("lat_seconds type = %q", sc.Types["lat_seconds"])
	}
	if v, ok := sc.Value("lat_seconds_count", Labels{"op": "fetch"}); !ok || v != 1 {
		t.Fatalf("lat_seconds_count = %v, %v", v, ok)
	}
	inf := sc.Select("lat_seconds_bucket", Labels{"le": "+Inf"})
	if len(inf) != 1 || inf[0].Value != 1 {
		t.Fatalf("+Inf bucket samples = %+v", inf)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"name_only\n",
		"m{k=\"unterminated\n",
		"m 1e999x\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
	// Unknown comments are fine.
	sc, err := ParseText(strings.NewReader("# EOF\n\nm 1\n"))
	if err != nil || len(sc.Samples) != 1 {
		t.Fatalf("comment handling: %v %+v", err, sc)
	}
}

func TestParseValueInf(t *testing.T) {
	v, err := parseValue("+Inf")
	if err != nil || !math.IsInf(v, 1) {
		t.Fatalf("+Inf: %v %v", v, err)
	}
}
