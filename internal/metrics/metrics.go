// Package metrics implements the measurement methodology of §6.1:
// throughput (items processed per second of processing time), latency
// (total time to process a dataset), and accuracy loss
// (|approx−exact|/exact), plus small summary-statistics helpers used by
// the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Throughput converts an item count and elapsed wall time into
// items/second. It returns 0 for non-positive elapsed time.
func Throughput(items int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(items) / elapsed.Seconds()
}

// Stopwatch measures one run's processing time and item count.
type Stopwatch struct {
	start time.Time
	items int64
}

// Start returns a running stopwatch.
func Start() *Stopwatch {
	return &Stopwatch{start: time.Now()}
}

// Add counts processed items.
func (s *Stopwatch) Add(n int64) { s.items += n }

// Items returns the counted items.
func (s *Stopwatch) Items() int64 { return s.items }

// Elapsed returns time since Start.
func (s *Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// Throughput returns counted items over elapsed time.
func (s *Stopwatch) Throughput() float64 { return Throughput(s.items, s.Elapsed()) }

// Series summarizes a slice of float64 measurements.
type Series struct {
	Count  int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Summarize computes summary statistics; it returns a zero Series for
// empty input.
func Summarize(vals []float64) Series {
	if len(vals) == 0 {
		return Series{}
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, v := range sorted {
		d := v - mean
		ss += d * d
	}
	sd := 0.0
	if len(sorted) > 1 {
		sd = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return Series{
		Count:  len(sorted),
		Mean:   mean,
		Stddev: sd,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentile(sorted, 0.50),
		P95:    percentile(sorted, 0.95),
	}
}

// percentile takes the nearest-rank percentile of a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// FormatItemsPerSec renders a throughput with K/M scaling, matching the
// figure axes of the paper ("Throughput (K) #items/s").
func FormatItemsPerSec(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM items/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK items/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f items/s", v)
	}
}
