package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("Throughput = %v", got)
	}
	if got := Throughput(500, 250*time.Millisecond); got != 2000 {
		t.Errorf("Throughput = %v", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Errorf("zero elapsed should yield 0, got %v", got)
	}
	if got := Throughput(100, -time.Second); got != 0 {
		t.Errorf("negative elapsed should yield 0, got %v", got)
	}
}

func TestStopwatch(t *testing.T) {
	sw := Start()
	sw.Add(100)
	sw.Add(50)
	if sw.Items() != 150 {
		t.Errorf("Items = %d", sw.Items())
	}
	time.Sleep(time.Millisecond)
	if sw.Elapsed() <= 0 {
		t.Error("Elapsed not positive")
	}
	if sw.Throughput() <= 0 {
		t.Error("Throughput not positive")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Series = %+v", s)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v", s.P50)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty series = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Count != 1 || s.Mean != 7 || s.Stddev != 0 || s.P95 != 7 {
		t.Errorf("single-value series = %+v", s)
	}
}

func TestPercentileP95(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	s := Summarize(vals)
	if s.P95 != 95 {
		t.Errorf("P95 = %v", s.P95)
	}
}

func TestFormatItemsPerSec(t *testing.T) {
	if got := FormatItemsPerSec(2.5e6); !strings.Contains(got, "M") {
		t.Errorf("2.5e6 -> %q", got)
	}
	if got := FormatItemsPerSec(1500); !strings.Contains(got, "K") {
		t.Errorf("1500 -> %q", got)
	}
	if got := FormatItemsPerSec(42); got != "42 items/s" {
		t.Errorf("42 -> %q", got)
	}
}
