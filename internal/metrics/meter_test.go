package metrics

import (
	"testing"
	"time"
)

func TestMeterSmoothesRate(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_rate", "test", nil)
	m := NewMeter(0.5, g)
	now := time.Unix(0, 0)
	m.now = func() time.Time { return now }

	if r := m.Mark(100); r != 0 {
		t.Errorf("first Mark returned %v, want 0 (only seeds the clock)", r)
	}
	now = now.Add(time.Second)
	if r := m.Mark(100); r != 100 {
		t.Errorf("rate after 100 items in 1s = %v, want 100", r)
	}
	// A faster second interval moves the EWMA halfway (alpha 0.5).
	now = now.Add(time.Second)
	if r := m.Mark(300); r != 200 {
		t.Errorf("smoothed rate = %v, want 200", r)
	}
	if g.Value() != 200 {
		t.Errorf("gauge = %v, want 200", g.Value())
	}
	if m.Rate() != 200 {
		t.Errorf("Rate() = %v, want 200", m.Rate())
	}
}

func TestMeterZeroIntervalIgnored(t *testing.T) {
	m := NewMeter(0, nil)
	now := time.Unix(0, 0)
	m.now = func() time.Time { return now }
	m.Mark(10)
	if r := m.Mark(10); r != 0 {
		t.Errorf("zero-interval Mark changed the rate: %v", r)
	}
}
