// Package estimate implements StreamApprox's error-estimation mechanism
// (paper §3.3): rigorous variance estimates for the approximate SUM and
// MEAN of a stratified sample, converted into error bounds via the
// 68-95-99.7 rule.
//
// Given X sub-streams where stratum i contributed Ci items of which Yi
// were sampled (values Ii,1..Ii,Yi):
//
//	Var^(SUM)  = Σ_i Ci·(Ci−Yi)·s²i/Yi                       (Eq. 6)
//	Var^(MEAN) = Σ_i ω²i·(s²i/Yi)·(Ci−Yi)/Ci, ωi = Ci/ΣC     (Eq. 9)
//
// with s²i the sample variance of stratum i's sampled items (Eq. 7).
// The (Ci−Yi)/Ci term is the finite-population correction: strata sampled
// exhaustively (Yi = Ci) contribute zero variance.
package estimate

import (
	"fmt"
	"math"

	"streamapprox/internal/sampling"
)

// Confidence selects the error-bound multiplier per the 68-95-99.7 rule.
type Confidence int

// Supported confidence levels.
const (
	Conf68  Confidence = iota + 1 // ±1σ
	Conf95                        // ±2σ
	Conf997                       // ±3σ
)

// Sigmas returns the standard-deviation multiplier for the level.
func (c Confidence) Sigmas() float64 {
	switch c {
	case Conf68:
		return 1
	case Conf997:
		return 3
	default:
		return 2
	}
}

// String returns the human-readable confidence level.
func (c Confidence) String() string {
	switch c {
	case Conf68:
		return "68%"
	case Conf997:
		return "99.7%"
	default:
		return "95%"
	}
}

// Estimate is an approximate query result with its error bound:
// the true value lies in [Value−Bound, Value+Bound] with probability
// Confidence (under the CLT assumptions of §7).
type Estimate struct {
	Value      float64
	Variance   float64
	Bound      float64
	Confidence Confidence
}

// String renders "value ± bound (conf)".
func (e Estimate) String() string {
	return fmt.Sprintf("%.4f ± %.4f (%s)", e.Value, e.Bound, e.Confidence)
}

// Interval returns the estimate's confidence interval [lo, hi].
func (e Estimate) Interval() (lo, hi float64) {
	return e.Value - e.Bound, e.Value + e.Bound
}

// Contains reports whether v falls inside the confidence interval.
func (e Estimate) Contains(v float64) bool {
	lo, hi := e.Interval()
	return v >= lo && v <= hi
}

// stratumStats holds the per-stratum sufficient statistics.
type stratumStats struct {
	ci     float64 // total items observed
	yi     float64 // items sampled
	sum    float64 // Σ sampled values
	mean   float64
	s2     float64 // sample variance (Eq. 7)
	weight float64
}

func statsFor(st *sampling.StratumSample) stratumStats {
	yi := float64(len(st.Items))
	var sum float64
	for _, it := range st.Items {
		sum += it.Value
	}
	mean := 0.0
	if yi > 0 {
		mean = sum / yi
	}
	var s2 float64
	if yi > 1 {
		for _, it := range st.Items {
			d := it.Value - mean
			s2 += d * d
		}
		s2 /= yi - 1
	}
	return stratumStats{
		ci:     float64(st.Count),
		yi:     yi,
		sum:    sum,
		mean:   mean,
		s2:     s2,
		weight: st.Weight,
	}
}

// Sum returns the approximate weighted sum of all items received from all
// sub-streams (Eqs. 2–3) with its error bound (Eq. 6).
func Sum(s *sampling.Sample, conf Confidence) Estimate {
	var value, variance float64
	for i := range s.Strata {
		st := statsFor(&s.Strata[i])
		value += st.sum * st.weight // SUMi = (Σ Ii,j) · Wi      (Eq. 2)
		if st.yi > 0 {
			variance += st.ci * (st.ci - st.yi) * st.s2 / st.yi // (Eq. 6)
		}
	}
	return finish(value, variance, conf)
}

// Mean returns the approximate mean of all items (Eq. 4) with its error
// bound (Eq. 9).
func Mean(s *sampling.Sample, conf Confidence) Estimate {
	total := float64(s.TotalCount())
	if total == 0 {
		return Estimate{Confidence: conf}
	}
	var value, variance float64
	for i := range s.Strata {
		st := statsFor(&s.Strata[i])
		if st.ci == 0 {
			continue
		}
		omega := st.ci / total
		value += omega * st.mean // MEAN = Σ ωi·MEANi          (Eq. 8)
		if st.yi > 0 {
			fpc := (st.ci - st.yi) / st.ci
			variance += omega * omega * (st.s2 / st.yi) * fpc // (Eq. 9)
		}
	}
	return finish(value, variance, conf)
}

// Count returns the estimated total number of items (exact for OASRS and
// STS since counters track arrivals; the bound is therefore zero).
func Count(s *sampling.Sample, conf Confidence) Estimate {
	return Estimate{Value: float64(s.TotalCount()), Confidence: conf}
}

// LinearFunc estimates Σ f(item) over the original stream: a generic
// linear query (§3.2 "OASRS supports any types of approximate linear
// queries"). The variance formula is Eq. 6 applied to the transformed
// values.
func LinearFunc(s *sampling.Sample, f func(v float64) float64, conf Confidence) Estimate {
	var value, variance float64
	for i := range s.Strata {
		st := &s.Strata[i]
		yi := float64(len(st.Items))
		if yi == 0 {
			continue
		}
		var sum float64
		vals := make([]float64, len(st.Items))
		for j, it := range st.Items {
			vals[j] = f(it.Value)
			sum += vals[j]
		}
		mean := sum / yi
		var s2 float64
		if yi > 1 {
			for _, v := range vals {
				d := v - mean
				s2 += d * d
			}
			s2 /= yi - 1
		}
		ci := float64(st.Count)
		value += sum * st.Weight
		variance += ci * (ci - yi) * s2 / yi
	}
	return finish(value, variance, conf)
}

func finish(value, variance float64, conf Confidence) Estimate {
	if variance < 0 {
		variance = 0
	}
	if conf == 0 {
		conf = Conf95
	}
	return Estimate{
		Value:      value,
		Variance:   variance,
		Bound:      conf.Sigmas() * math.Sqrt(variance),
		Confidence: conf,
	}
}

// AccuracyLoss computes the paper's accuracy-loss metric (§6.1):
// |approx − exact| / |exact|. It returns 0 when exact is 0 and approx is
// 0, and +Inf when exact is 0 but approx is not.
func AccuracyLoss(approx, exact float64) float64 {
	if exact == 0 {
		if approx == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(approx-exact) / math.Abs(exact)
}
