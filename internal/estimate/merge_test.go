package estimate

import (
	"math"
	"testing"

	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// shardedPopulation builds a 3-stratum population, splits it round-robin
// across n shards (disjoint sub-populations, as keyed partitions would
// be after round-robin routing), and samples each shard independently
// with OASRS. It returns the per-shard samples plus the exact sum, count
// and mean of the whole population.
func shardedPopulation(seed uint64, shards int) (samples []*sampling.Sample, sum float64, count int64, mean float64) {
	rng := xrand.New(seed)
	type stratumSpec struct {
		name string
		mu   float64
		sd   float64
	}
	specs := []stratumSpec{
		{"web", 100, 20},
		{"dns", 40, 5},
		{"p2p", 900, 150},
	}
	var events []stream.Event
	for _, sp := range specs {
		n := 200 + int(rng.Uint64()%600)
		for i := 0; i < n; i++ {
			events = append(events, stream.Event{Stratum: sp.name, Value: rng.Gaussian(sp.mu, sp.sd)})
		}
	}
	for _, e := range events {
		sum += e.Value
	}
	count = int64(len(events))
	mean = sum / float64(count)

	workers := make([]*sampling.OASRS, shards)
	perShard := len(events)/shards + 1
	for i := range workers {
		workers[i] = sampling.NewOASRS(int(0.3*float64(perShard)), nil, rng.Split())
	}
	for i, e := range events {
		workers[i%shards].Add(e)
	}
	samples = make([]*sampling.Sample, shards)
	for i, w := range workers {
		samples[i] = w.Finish()
	}
	return samples, sum, count, mean
}

// TestMergedSumBoundCoversExact is the coverage property for sharded
// execution: merging per-shard SUM estimates with MergeSums must yield
// an interval that contains the exact population sum at no less than
// (roughly) the configured 95% confidence, across many seeded
// populations.
func TestMergedSumBoundCoversExact(t *testing.T) {
	const trials = 300
	covered := 0
	for seed := uint64(1); seed <= trials; seed++ {
		samples, exact, _, _ := shardedPopulation(seed, 4)
		parts := make([]Estimate, len(samples))
		for i, s := range samples {
			parts[i] = Sum(s, Conf95)
		}
		merged := MergeSums(parts)
		if merged.Bound <= 0 {
			t.Fatalf("seed %d: merged bound not positive: %v", seed, merged)
		}
		if merged.Contains(exact) {
			covered++
		}
	}
	// 95% nominal; allow sampling slack but fail on anything that
	// suggests the bound is systematically too tight.
	if rate := float64(covered) / trials; rate < 0.90 {
		t.Errorf("merged sum bound covered exact in only %.1f%% of %d trials, want >= 90%%",
			rate*100, trials)
	}
}

// TestMergedMeanBoundCoversExact is the same property for MergeMeans,
// which weights shards by their observed item counts.
func TestMergedMeanBoundCoversExact(t *testing.T) {
	const trials = 300
	covered := 0
	for seed := uint64(1); seed <= trials; seed++ {
		samples, _, _, exact := shardedPopulation(seed, 4)
		parts := make([]Estimate, len(samples))
		counts := make([]int64, len(samples))
		for i, s := range samples {
			parts[i] = Mean(s, Conf95)
			counts[i] = s.TotalCount()
		}
		merged := MergeMeans(parts, counts)
		if merged.Contains(exact) {
			covered++
		}
	}
	if rate := float64(covered) / trials; rate < 0.90 {
		t.Errorf("merged mean bound covered exact in only %.1f%% of %d trials, want >= 90%%",
			rate*100, trials)
	}
}

// TestMergeAgreesWithSampleLevelMerge cross-checks the two merge paths:
// estimate-level merging (MergeSums/MergeMeans) must agree with
// evaluating one estimate over the concatenated per-shard samples, since
// both implement the same stratified algebra over disjoint
// sub-populations.
func TestMergeAgreesWithSampleLevelMerge(t *testing.T) {
	samples, _, _, _ := shardedPopulation(7, 4)
	union := &sampling.Sample{}
	for _, s := range samples {
		union.Strata = append(union.Strata, s.Strata...)
	}

	parts := make([]Estimate, len(samples))
	counts := make([]int64, len(samples))
	for i, s := range samples {
		parts[i] = Sum(s, Conf95)
		counts[i] = s.TotalCount()
	}
	mergedSum := MergeSums(parts)
	directSum := Sum(union, Conf95)
	if d := math.Abs(mergedSum.Value - directSum.Value); d > 1e-6 {
		t.Errorf("sum value: merged %v vs direct %v", mergedSum.Value, directSum.Value)
	}
	if d := math.Abs(mergedSum.Variance - directSum.Variance); d > 1e-6*directSum.Variance {
		t.Errorf("sum variance: merged %v vs direct %v", mergedSum.Variance, directSum.Variance)
	}

	for i, s := range samples {
		parts[i] = Mean(s, Conf95)
	}
	mergedMean := MergeMeans(parts, counts)
	directMean := Mean(union, Conf95)
	if d := math.Abs(mergedMean.Value - directMean.Value); d > 1e-9 {
		t.Errorf("mean value: merged %v vs direct %v", mergedMean.Value, directMean.Value)
	}
	if d := math.Abs(mergedMean.Variance - directMean.Variance); d > 1e-9 {
		t.Errorf("mean variance: merged %v vs direct %v", mergedMean.Variance, directMean.Variance)
	}
}

// TestFromBoundRoundTrip checks variance recovery from public bounds.
func TestFromBoundRoundTrip(t *testing.T) {
	orig := finish(42, 9, Conf95)
	back := FromBound(orig.Value, orig.Bound, orig.Confidence)
	if math.Abs(back.Variance-orig.Variance) > 1e-12 {
		t.Errorf("variance round trip: %v vs %v", back.Variance, orig.Variance)
	}
	if z := FromBound(1, 3, Conf997); math.Abs(z.Variance-1) > 1e-12 {
		t.Errorf("Conf997 variance = %v, want 1", z.Variance)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	if got := MergeSums(nil); got.Value != 0 || got.Bound != 0 {
		t.Errorf("empty MergeSums = %v", got)
	}
	if got := MergeMeans([]Estimate{{Value: 5, Confidence: Conf95}}, []int64{0}); got.Value != 0 {
		t.Errorf("zero-weight MergeMeans = %v", got)
	}
	got := MergeMeans(
		[]Estimate{{Value: 10, Variance: 4, Confidence: Conf95}, {Value: 20, Variance: 4, Confidence: Conf95}},
		[]int64{100, 300},
	)
	if math.Abs(got.Value-17.5) > 1e-12 {
		t.Errorf("weighted mean = %v, want 17.5", got.Value)
	}
	wantVar := 0.25*0.25*4 + 0.75*0.75*4
	if math.Abs(got.Variance-wantVar) > 1e-12 {
		t.Errorf("weighted variance = %v, want %v", got.Variance, wantVar)
	}
}
