package estimate

import (
	"math"
	"strings"
	"testing"

	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

func sampleFrom(items map[string][]float64, counts map[string]int64) *sampling.Sample {
	var s sampling.Sample
	for stratum, vals := range items {
		evs := make([]stream.Event, len(vals))
		for i, v := range vals {
			evs[i] = stream.Event{Stratum: stratum, Value: v}
		}
		ci := counts[stratum]
		w := 1.0
		if ci > int64(len(vals)) && len(vals) > 0 {
			w = float64(ci) / float64(len(vals))
		}
		s.Strata = append(s.Strata, sampling.StratumSample{
			Stratum: stratum, Items: evs, Count: ci, Weight: w,
		})
	}
	return &s
}

func TestSumFullySampledIsExact(t *testing.T) {
	// When Yi = Ci the estimate is the exact sum with zero variance
	// (finite-population correction).
	s := sampleFrom(
		map[string][]float64{"a": {1, 2, 3}, "b": {10, 20}},
		map[string]int64{"a": 3, "b": 2},
	)
	got := Sum(s, Conf95)
	if got.Value != 36 {
		t.Errorf("Sum = %v, want 36", got.Value)
	}
	if got.Variance != 0 || got.Bound != 0 {
		t.Errorf("fully-sampled variance = %v, bound = %v, want 0", got.Variance, got.Bound)
	}
}

func TestSumWeighted(t *testing.T) {
	// 10 of 100 items sampled, each representing 10 originals.
	s := sampleFrom(
		map[string][]float64{"a": {1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
		map[string]int64{"a": 100},
	)
	got := Sum(s, Conf95)
	if got.Value != 100 {
		t.Errorf("Sum = %v, want 100", got.Value)
	}
	// Identical values => zero sample variance => zero bound.
	if got.Bound != 0 {
		t.Errorf("Bound = %v, want 0 for constant values", got.Bound)
	}
}

func TestSumVarianceEquation6(t *testing.T) {
	// Hand-computed: values {0, 2}, Ci=10, Yi=2.
	// mean=1, s² = ((0-1)²+(2-1)²)/(2-1) = 2.
	// Var = Ci(Ci-Yi)s²/Yi = 10*8*2/2 = 80.
	s := sampleFrom(map[string][]float64{"a": {0, 2}}, map[string]int64{"a": 10})
	got := Sum(s, Conf95)
	if math.Abs(got.Variance-80) > 1e-9 {
		t.Errorf("Variance = %v, want 80", got.Variance)
	}
	if math.Abs(got.Bound-2*math.Sqrt(80)) > 1e-9 {
		t.Errorf("Bound = %v, want 2*sqrt(80)", got.Bound)
	}
}

func TestMeanEquation8And9(t *testing.T) {
	// Stratum a: Ci=10, values {0,2} -> mean 1, s²=2.
	// Stratum b: Ci=30, values {4,6} -> mean 5, s²=2.
	// MEAN = (10/40)*1 + (30/40)*5 = 0.25 + 3.75 = 4.
	// Var = (10/40)²*(2/2)*(8/10) + (30/40)²*(2/2)*(28/30)
	//     = 0.0625*0.8 + 0.5625*0.9333... = 0.05 + 0.525 = 0.575.
	s := sampleFrom(
		map[string][]float64{"a": {0, 2}, "b": {4, 6}},
		map[string]int64{"a": 10, "b": 30},
	)
	got := Mean(s, Conf95)
	if math.Abs(got.Value-4) > 1e-9 {
		t.Errorf("Mean = %v, want 4", got.Value)
	}
	if math.Abs(got.Variance-0.575) > 1e-9 {
		t.Errorf("Variance = %v, want 0.575", got.Variance)
	}
}

func TestMeanEmptySample(t *testing.T) {
	got := Mean(&sampling.Sample{}, Conf95)
	if got.Value != 0 || got.Bound != 0 {
		t.Errorf("empty sample mean = %+v", got)
	}
}

func TestCountIsExact(t *testing.T) {
	s := sampleFrom(map[string][]float64{"a": {1}}, map[string]int64{"a": 12345})
	got := Count(s, Conf95)
	if got.Value != 12345 || got.Bound != 0 {
		t.Errorf("Count = %+v", got)
	}
}

func TestLinearFuncMatchesSumForIdentity(t *testing.T) {
	s := sampleFrom(map[string][]float64{"a": {1, 3, 5, 7}}, map[string]int64{"a": 40})
	sum := Sum(s, Conf95)
	lin := LinearFunc(s, func(v float64) float64 { return v }, Conf95)
	if math.Abs(sum.Value-lin.Value) > 1e-9 || math.Abs(sum.Variance-lin.Variance) > 1e-9 {
		t.Errorf("LinearFunc(identity) = %+v, Sum = %+v", lin, sum)
	}
}

func TestLinearFuncTransform(t *testing.T) {
	// Query: count items with value > 2 (indicator function — a linear
	// query per the paper's histogram example).
	s := sampleFrom(map[string][]float64{"a": {1, 3, 5, 1}}, map[string]int64{"a": 8})
	got := LinearFunc(s, func(v float64) float64 {
		if v > 2 {
			return 1
		}
		return 0
	}, Conf95)
	// 2 of 4 sampled qualify, weight 2 => estimate 4.
	if got.Value != 4 {
		t.Errorf("indicator estimate = %v, want 4", got.Value)
	}
}

func TestConfidenceLevels(t *testing.T) {
	s := sampleFrom(map[string][]float64{"a": {0, 2}}, map[string]int64{"a": 10})
	b68 := Sum(s, Conf68).Bound
	b95 := Sum(s, Conf95).Bound
	b997 := Sum(s, Conf997).Bound
	if !(b68 < b95 && b95 < b997) {
		t.Errorf("bounds not ordered: %v %v %v", b68, b95, b997)
	}
	if math.Abs(b95/b68-2) > 1e-9 || math.Abs(b997/b68-3) > 1e-9 {
		t.Errorf("sigma multipliers wrong: %v %v %v", b68, b95, b997)
	}
	if Conf68.String() != "68%" || Conf95.String() != "95%" || Conf997.String() != "99.7%" {
		t.Error("confidence String() wrong")
	}
	if Confidence(0).Sigmas() != 2 {
		t.Error("zero confidence should default to 2 sigmas")
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{Value: 10, Bound: 2, Confidence: Conf95}
	lo, hi := e.Interval()
	if lo != 8 || hi != 12 {
		t.Errorf("Interval = [%v, %v]", lo, hi)
	}
	if !e.Contains(9) || e.Contains(13) {
		t.Error("Contains broken")
	}
	if !strings.Contains(e.String(), "±") || !strings.Contains(e.String(), "95%") {
		t.Errorf("String = %q", e.String())
	}
}

func TestAccuracyLoss(t *testing.T) {
	for _, tc := range []struct {
		approx, exact, want float64
	}{
		{100, 100, 0},
		{101, 100, 0.01},
		{99, 100, 0.01},
		{0, 0, 0},
		{-105, -100, 0.05},
	} {
		if got := AccuracyLoss(tc.approx, tc.exact); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("AccuracyLoss(%v, %v) = %v, want %v", tc.approx, tc.exact, got, tc.want)
		}
	}
	if !math.IsInf(AccuracyLoss(1, 0), 1) {
		t.Error("AccuracyLoss(1, 0) should be +Inf")
	}
}

// TestCoverage95 is the statistical soundness check of the whole §3.3
// machinery: across many independent OASRS runs, the 95% interval must
// contain the true sum roughly 95% of the time (within Monte-Carlo noise).
func TestCoverage95(t *testing.T) {
	rng := xrand.New(99)
	// Build a fixed population of 3 Gaussian strata.
	var population []stream.Event
	var trueSum float64
	for i := 0; i < 2000; i++ {
		for s, mu := range map[string]float64{"a": 10, "b": 1000, "c": 10000} {
			v := rng.Gaussian(mu, mu/10)
			population = append(population, stream.Event{Stratum: s, Value: v})
			trueSum += v
		}
	}
	const trials = 400
	covered := 0
	for trial := 0; trial < trials; trial++ {
		o := sampling.NewOASRS(600, nil, rng.Split())
		for _, e := range population {
			o.Add(e)
		}
		est := Sum(o.Finish(), Conf95)
		if est.Contains(trueSum) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 1.0 {
		t.Errorf("95%% interval coverage = %.3f over %d trials; error bounds are miscalibrated", rate, trials)
	}
}

func BenchmarkSum(b *testing.B) {
	rng := xrand.New(1)
	o := sampling.NewOASRS(3000, nil, rng)
	for i := 0; i < 100000; i++ {
		o.Add(stream.Event{Stratum: string(rune('a' + i%3)), Value: rng.Gaussian(100, 10)})
	}
	s := o.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum(s, Conf95)
	}
}
