package estimate

// This file implements cross-shard estimate merging for sharded
// execution: each shard samples and estimates a *disjoint* slice of the
// stream (one broker partition), and the merged per-window result must
// carry a combined error bound. Because shards sample independently and
// their populations are disjoint, variances are additive for totals and
// combine with squared population weights for means — the same algebra
// the paper applies across strata (Eqs. 6 and 9), lifted one level up to
// shards.

// FromBound reconstructs an Estimate from a (value, bound, confidence)
// triple, recovering the variance from the bound via the 68-95-99.7
// rule. It is the inverse of finish for consumers that only see public
// bounds (e.g. merged WindowResults) and need variance algebra.
func FromBound(value, bound float64, conf Confidence) Estimate {
	if conf == 0 {
		conf = Conf95
	}
	z := conf.Sigmas()
	return Estimate{
		Value:      value,
		Variance:   (bound / z) * (bound / z),
		Bound:      bound,
		Confidence: conf,
	}
}

// MergeSums combines per-shard SUM (or any additive total, e.g. a
// histogram bucket count) estimates over disjoint sub-populations: the
// merged value is the sum of the parts and, by independence of the
// shards' samplers, the merged variance is the sum of the variances.
// The confidence level of the first part is kept (parts are expected to
// share one level). Merging zero parts yields a zero estimate.
func MergeSums(parts []Estimate) Estimate {
	var value, variance float64
	var conf Confidence
	for _, p := range parts {
		value += p.Value
		variance += p.Variance
		if conf == 0 {
			conf = p.Confidence
		}
	}
	return finish(value, variance, conf)
}

// MergeCounts combines per-shard COUNT estimates. Counts are exact for
// OASRS (arrival counters track every item), so the merged bound stays
// zero unless a part carries variance.
func MergeCounts(parts []Estimate) Estimate {
	return MergeSums(parts)
}

// MergeMeans combines per-shard MEAN estimates over disjoint
// sub-populations, weighting each part by its population size
// (the shard's observed item count):
//
//	MEAN  = Σ ωi·MEANi          ωi = Ci/ΣC
//	Var^  = Σ ω²i·Var^i
//
// — Eq. 8/9 applied with shards in place of strata. Parts with zero
// weight are skipped; if all weights are zero the merged estimate is
// zero with the first part's confidence.
func MergeMeans(parts []Estimate, counts []int64) Estimate {
	var total float64
	for i := range parts {
		if i < len(counts) && counts[i] > 0 {
			total += float64(counts[i])
		}
	}
	var conf Confidence
	for _, p := range parts {
		if conf == 0 {
			conf = p.Confidence
		}
	}
	if total == 0 {
		return finish(0, 0, conf)
	}
	var value, variance float64
	for i, p := range parts {
		if i >= len(counts) || counts[i] <= 0 {
			continue
		}
		omega := float64(counts[i]) / total
		value += omega * p.Value
		variance += omega * omega * p.Variance
	}
	return finish(value, variance, conf)
}
