// Package stream defines the shared data-plane types of StreamApprox: the
// event record flowing through every engine, the source/sink contracts, and
// small helpers for partitioning events across workers.
//
// Terminology follows the paper (§2): the input data stream consists of
// sub-streams identified by their source; each sub-stream is a stratum for
// the stratified sampler.
package stream

import (
	"context"
	"time"
)

// Event is one data item in the input stream.
//
// Stratum identifies the sub-stream (data source) the item belongs to —
// e.g. a sensor id, a network protocol, or a NYC borough. Value is the
// numeric payload that linear queries (SUM/MEAN/COUNT, §3.2) aggregate.
// Time is the event time assigned by the source.
type Event struct {
	Stratum string    `json:"stratum"`
	Value   float64   `json:"value"`
	Time    time.Time `json:"time"`
}

// Source produces events. Next returns the next event in the stream; it
// returns ok=false when the stream is exhausted. Implementations need not
// be safe for concurrent use; fan-out is the engine's job.
type Source interface {
	Next() (Event, bool)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (Event, bool)

// Next calls f.
func (f SourceFunc) Next() (Event, bool) { return f() }

// Sink consumes query results or raw events.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(e Event) { f(e) }

// SliceSource replays a fixed slice of events. It is the workhorse for
// tests and for the replay tool once a dataset has been materialized.
type SliceSource struct {
	events []Event
	pos    int
}

// NewSliceSource returns a Source that yields the given events in order.
// The slice is not copied; callers must not mutate it while the source is
// in use.
func NewSliceSource(events []Event) *SliceSource {
	return &SliceSource{events: events}
}

// Next returns the next event.
func (s *SliceSource) Next() (Event, bool) {
	if s.pos >= len(s.events) {
		return Event{}, false
	}
	e := s.events[s.pos]
	s.pos++
	return e, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of events the source will yield.
func (s *SliceSource) Len() int { return len(s.events) }

// ChanSource adapts a channel of events to the Source interface. Next
// blocks until an event is available, the channel is closed, or ctx is
// cancelled.
type ChanSource struct {
	ctx context.Context
	ch  <-chan Event
}

// NewChanSource returns a Source reading from ch until it is closed or ctx
// is done.
func NewChanSource(ctx context.Context, ch <-chan Event) *ChanSource {
	return &ChanSource{ctx: ctx, ch: ch}
}

// Next returns the next event from the channel.
func (s *ChanSource) Next() (Event, bool) {
	select {
	case e, ok := <-s.ch:
		return e, ok
	case <-s.ctx.Done():
		return Event{}, false
	}
}

// CollectSink appends every emitted event to an internal slice.
// It is not safe for concurrent use.
type CollectSink struct {
	Events []Event
}

// Emit records e.
func (c *CollectSink) Emit(e Event) { c.Events = append(c.Events, e) }

// Drain reads events from src until exhaustion and returns them.
func Drain(src Source) []Event {
	var out []Event
	for {
		e, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// Interleave merges several per-stratum event slices into a single stream
// ordered by event time (stable for equal timestamps). It models the
// stream aggregator's view of disjoint sub-streams combined into one
// input stream (§2.1) when a broker is not in the loop.
func Interleave(streams ...[]Event) []Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Event, 0, total)
	idx := make([]int, len(streams))
	for len(out) < total {
		best := -1
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			if best == -1 || s[idx[i]].Time.Before(streams[best][idx[best]].Time) {
				best = i
			}
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
	return out
}

// PartitionRoundRobin splits events into n partitions by round-robin
// assignment, the default distribution policy of the batch engine.
func PartitionRoundRobin(events []Event, n int) [][]Event {
	if n <= 0 {
		n = 1
	}
	parts := make([][]Event, n)
	per := (len(events) + n - 1) / n
	for i := range parts {
		parts[i] = make([]Event, 0, per)
	}
	for i, e := range events {
		parts[i%n] = append(parts[i%n], e)
	}
	return parts
}

// PartitionByStratum groups events by their stratum key, preserving the
// within-stratum order. It is the groupBy(strata) step used by the
// Spark-style stratified sampling baseline (§4.1.1).
func PartitionByStratum(events []Event) map[string][]Event {
	out := make(map[string][]Event)
	for _, e := range events {
		out[e.Stratum] = append(out[e.Stratum], e)
	}
	return out
}
