package stream

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

func ev(stratum string, v float64, offsetMS int) Event {
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	return Event{Stratum: stratum, Value: v, Time: base.Add(time.Duration(offsetMS) * time.Millisecond)}
}

func TestSliceSource(t *testing.T) {
	events := []Event{ev("a", 1, 0), ev("b", 2, 1), ev("a", 3, 2)}
	src := NewSliceSource(events)
	if src.Len() != 3 {
		t.Fatalf("Len = %d, want 3", src.Len())
	}
	got := Drain(src)
	if len(got) != 3 {
		t.Fatalf("drained %d events, want 3", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
	if _, ok := src.Next(); ok {
		t.Error("exhausted source returned an event")
	}
	src.Reset()
	if e, ok := src.Next(); !ok || e != events[0] {
		t.Error("Reset did not rewind the source")
	}
}

func TestSourceFunc(t *testing.T) {
	n := 0
	src := SourceFunc(func() (Event, bool) {
		if n >= 2 {
			return Event{}, false
		}
		n++
		return ev("x", float64(n), n), true
	})
	if got := len(Drain(src)); got != 2 {
		t.Errorf("drained %d, want 2", got)
	}
}

func TestChanSource(t *testing.T) {
	ch := make(chan Event, 1)
	src := NewChanSource(context.Background(), ch)
	ch <- ev("a", 1, 0)
	close(ch)
	got := Drain(src)
	if len(got) != 1 || got[0].Value != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestChanSourceContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan Event)
	src := NewChanSource(ctx, ch)
	cancel()
	if _, ok := src.Next(); ok {
		t.Error("cancelled source returned an event")
	}
}

func TestCollectSink(t *testing.T) {
	var sink CollectSink
	sink.Emit(ev("a", 1, 0))
	sink.Emit(ev("b", 2, 1))
	if len(sink.Events) != 2 {
		t.Fatalf("collected %d, want 2", len(sink.Events))
	}
}

func TestSinkFunc(t *testing.T) {
	n := 0
	s := SinkFunc(func(Event) { n++ })
	s.Emit(Event{})
	if n != 1 {
		t.Error("SinkFunc did not invoke the function")
	}
}

func TestInterleaveOrdersByTime(t *testing.T) {
	a := []Event{ev("a", 1, 0), ev("a", 2, 10), ev("a", 3, 20)}
	b := []Event{ev("b", 4, 5), ev("b", 5, 15)}
	merged := Interleave(a, b)
	if len(merged) != 5 {
		t.Fatalf("merged %d events, want 5", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time.Before(merged[i-1].Time) {
			t.Fatalf("merged stream out of order at %d: %v", i, merged)
		}
	}
}

func TestInterleaveEmpty(t *testing.T) {
	if got := Interleave(); len(got) != 0 {
		t.Errorf("Interleave() = %v, want empty", got)
	}
	if got := Interleave(nil, nil); len(got) != 0 {
		t.Errorf("Interleave(nil,nil) = %v, want empty", got)
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	events := []Event{ev("a", 1, 0), ev("a", 2, 1), ev("a", 3, 2), ev("a", 4, 3), ev("a", 5, 4)}
	parts := PartitionRoundRobin(events, 2)
	if len(parts) != 2 {
		t.Fatalf("got %d partitions", len(parts))
	}
	if len(parts[0]) != 3 || len(parts[1]) != 2 {
		t.Errorf("partition sizes %d/%d, want 3/2", len(parts[0]), len(parts[1]))
	}
}

func TestPartitionRoundRobinPreservesAll(t *testing.T) {
	if err := quick.Check(func(vals []float64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		events := make([]Event, len(vals))
		for i, v := range vals {
			events[i] = ev("s", v, i)
		}
		parts := PartitionRoundRobin(events, n)
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		return total == len(events)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionRoundRobinNonPositiveN(t *testing.T) {
	parts := PartitionRoundRobin([]Event{ev("a", 1, 0)}, 0)
	if len(parts) != 1 || len(parts[0]) != 1 {
		t.Errorf("PartitionRoundRobin with n=0 should fall back to 1 partition")
	}
}

func TestPartitionByStratum(t *testing.T) {
	events := []Event{ev("tcp", 1, 0), ev("udp", 2, 1), ev("tcp", 3, 2)}
	groups := PartitionByStratum(events)
	if len(groups) != 2 {
		t.Fatalf("got %d strata, want 2", len(groups))
	}
	if len(groups["tcp"]) != 2 || groups["tcp"][0].Value != 1 || groups["tcp"][1].Value != 3 {
		t.Errorf("tcp group = %v", groups["tcp"])
	}
	if len(groups["udp"]) != 1 {
		t.Errorf("udp group = %v", groups["udp"])
	}
}
