package stream

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestEventBatchInternDedupes(t *testing.T) {
	b := GetEventBatch()
	defer b.Release()
	a1 := b.Intern("alpha")
	b1 := b.Intern("beta")
	a2 := b.Intern("alpha")
	a3 := b.InternBytes([]byte("alpha"))
	g1 := b.InternBytes([]byte("gamma"))
	if a1 != a2 || a1 != a3 {
		t.Errorf("alpha interned to %d, %d, %d — want one ID", a1, a2, a3)
	}
	if a1 == b1 || b1 == g1 {
		t.Error("distinct keys shared a dictionary ID")
	}
	if len(b.Dict) != 3 {
		t.Errorf("Dict has %d entries, want 3: %v", len(b.Dict), b.Dict)
	}
	if b.Dict[a1] != "alpha" || b.Dict[b1] != "beta" || b.Dict[g1] != "gamma" {
		t.Errorf("Dict order wrong: %v", b.Dict)
	}
}

func TestEventBatchAppendEventRoundTrip(t *testing.T) {
	b := GetEventBatch()
	defer b.Release()
	events := []Event{
		ev("tcp", 1.5, 0),
		ev("udp", -2, 10),
		{Stratum: "tcp", Value: 3}, // zero time must survive the round trip
	}
	for _, e := range events {
		b.AppendEvent(e)
	}
	if b.Len() != len(events) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(events))
	}
	for i, e := range events {
		if got := b.EventAt(i); got != e {
			t.Errorf("EventAt(%d) = %+v, want %+v", i, got, e)
		}
	}
	got := b.Events()
	for i, e := range events {
		if got[i] != e {
			t.Errorf("Events()[%d] = %+v, want %+v", i, got[i], e)
		}
	}
}

func TestTimeNanosSentinel(t *testing.T) {
	if TimeToNanos(time.Time{}) != ZeroTimeNanos {
		t.Error("zero time did not map to the sentinel")
	}
	if !TimeFromNanos(ZeroTimeNanos).IsZero() {
		t.Error("sentinel did not map back to the zero time")
	}
	now := time.Unix(0, 1712345678901234567).UTC()
	if got := TimeFromNanos(TimeToNanos(now)); !got.Equal(now) {
		t.Errorf("round trip: got %v, want %v", got, now)
	}
}

func TestEventBatchMaxTime(t *testing.T) {
	b := GetEventBatch()
	defer b.Release()
	b.AppendEvent(ev("a", 1, 50))
	b.AppendEvent(Event{Stratum: "a", Value: 2}) // zero time never wins
	b.AppendEvent(ev("a", 3, 20))
	want := ev("", 0, 50).Time
	if got := b.MaxTime(0, b.Len()); !got.Equal(want) {
		t.Errorf("MaxTime = %v, want %v", got, want)
	}
	if got := b.MaxTime(1, 2); !got.IsZero() {
		t.Errorf("MaxTime over only zero times = %v, want zero", got)
	}
}

func TestEventBatchSortByTime(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		b := GetEventBatch()
		n := rng.Intn(200)
		rows := make([]Event, n)
		for i := range rows {
			// Coarse times force duplicates, exercising stability.
			rows[i] = ev("s"+string(rune('a'+rng.Intn(3))), float64(i), rng.Intn(8))
			b.AppendEvent(rows[i])
		}
		b.SortByTime()
		if !b.TimeOrdered() {
			t.Fatalf("trial %d: batch not time-ordered after SortByTime", trial)
		}
		// A stable sort of the row form is the spec; all three columns
		// must move together.
		want := make([]Event, n)
		copy(want, rows)
		stableSortEvents(want)
		for i := range want {
			if got := b.EventAt(i); got != want[i] {
				t.Fatalf("trial %d row %d: got %+v, want %+v", trial, i, got, want[i])
			}
		}
		b.Release()
	}
}

// stableSortEvents is an insertion sort — trivially stable, fine at
// test sizes — used as the oracle for SortByTime.
func stableSortEvents(rows []Event) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].Time.Before(rows[j-1].Time); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func TestEventBatchPoolReuseStartsEmpty(t *testing.T) {
	b := GetEventBatch()
	b.AppendEvent(ev("a", 1, 0))
	b.Base = 42
	b.Release()
	// Whether or not the pool hands back the same batch, it must start
	// empty with a fresh dictionary.
	b2 := GetEventBatch()
	defer b2.Release()
	if b2.Len() != 0 || len(b2.Dict) != 0 || b2.Base != 0 {
		t.Errorf("pooled batch not reset: len=%d dict=%v base=%d", b2.Len(), b2.Dict, b2.Base)
	}
	if got := b2.Intern("zzz"); got != 0 {
		t.Errorf("stale intern table: Intern on fresh batch returned %d, want 0", got)
	}
}

func TestEventBatchRetainKeepsBatchAlive(t *testing.T) {
	b := GetEventBatch()
	b.AppendEvent(ev("a", 7, 3))
	b.Retain()
	b.Release() // one holder done; the other still reads
	if b.Len() != 1 || b.EventAt(0).Value != 7 {
		t.Error("batch contents lost while a reference was still held")
	}
	b.Release()
}

// TestEventBatchSharedReadersRace exercises the shared read-only
// contract under the race detector: many concurrent readers over one
// batch, each holding its own reference.
func TestEventBatchSharedReadersRace(t *testing.T) {
	b := GetEventBatch()
	for i := 0; i < 500; i++ {
		b.AppendEvent(ev("s"+string(rune('a'+i%5)), float64(i), i))
	}
	const readers = 8
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		b.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer b.Release()
			sum := 0.0
			for i := 0; i < b.Len(); i++ {
				sum += b.EventAt(i).Value
			}
			_ = b.MaxTime(0, b.Len())
			if sum == 0 {
				t.Error("empty read of a populated batch")
			}
		}()
	}
	b.Release()
	wg.Wait()
}
