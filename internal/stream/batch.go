package stream

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventBatch is the columnar (struct-of-arrays) form of a record batch:
// the currency of the vectorized serving tier. A batch holds one fetch
// round's records with stratum IDs dictionary-interned per batch, so the
// hot loops downstream (window-run segmentation, per-stratum reservoir
// resolution) compare small integers and walk dense slices instead of
// hashing strings and chasing per-event pointers.
//
// Times are unix nanoseconds with ZeroTimeNanos marking the zero
// time.Time (the same sentinel the wire codec and the storage frames
// use, so decode is a straight copy). Base is the broker offset of the
// first record; offsets within a batch are consecutive, which is what
// lets a skip boundary be applied as a slice bound instead of a
// per-record comparison.
//
// Batches are pooled and reference-counted: the producer takes one from
// GetEventBatch (refs=1), Retains it once per additional consumer it
// hands the batch to, and every holder Releases when done — the last
// Release returns the batch to the pool. All columns are read-only
// while the batch is shared.
type EventBatch struct {
	Strata []int32   // per-record dictionary index into Dict
	Values []float64 // per-record numeric payload
	Times  []int64   // per-record unix nanos (ZeroTimeNanos = zero time)
	Dict   []string  // batch-local stratum dictionary, first-seen order
	Base   int64     // broker offset of record 0; offsets are consecutive

	intern map[string]int32
	refs   atomic.Int32
}

// ZeroTimeNanos marks the zero time.Time in a batch's Times column,
// matching the wire codec's sentinel so decoded nanos copy through.
const ZeroTimeNanos = math.MinInt64

// TimeFromNanos converts a Times column entry back to a time.Time.
func TimeFromNanos(n int64) time.Time {
	if n == ZeroTimeNanos {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// TimeToNanos converts a time to its Times column form.
func TimeToNanos(t time.Time) int64 {
	if t.IsZero() {
		return ZeroTimeNanos
	}
	return t.UnixNano()
}

var batchPool = sync.Pool{New: func() any { return new(EventBatch) }}

// GetEventBatch returns an empty batch from the pool with one
// reference held by the caller.
func GetEventBatch() *EventBatch {
	b := batchPool.Get().(*EventBatch)
	b.Reset()
	b.refs.Store(1)
	return b
}

// Retain adds a reference for one more holder of the batch.
func (b *EventBatch) Retain() { b.refs.Add(1) }

// Release drops one reference, returning the batch to the pool when the
// last holder lets go. The caller must not touch the batch afterwards.
func (b *EventBatch) Release() {
	if b.refs.Add(-1) == 0 {
		batchPool.Put(b)
	}
}

// Reset empties the batch for reuse, keeping column capacity.
func (b *EventBatch) Reset() {
	b.Strata = b.Strata[:0]
	b.Values = b.Values[:0]
	b.Times = b.Times[:0]
	b.Dict = b.Dict[:0]
	b.Base = 0
	clear(b.intern)
}

// Len returns the number of records in the batch.
func (b *EventBatch) Len() int { return len(b.Values) }

// InternBytes returns the dictionary ID for a stratum key given as raw
// bytes, adding it on first sight. The string allocation happens once
// per distinct key per batch; lookups are allocation-free.
func (b *EventBatch) InternBytes(key []byte) int32 {
	if b.intern == nil {
		b.intern = make(map[string]int32, 16)
	}
	if id, ok := b.intern[string(key)]; ok {
		return id
	}
	id := int32(len(b.Dict))
	s := string(key)
	b.Dict = append(b.Dict, s)
	b.intern[s] = id
	return id
}

// Intern returns the dictionary ID for a stratum key, adding it on
// first sight.
func (b *EventBatch) Intern(key string) int32 {
	if b.intern == nil {
		b.intern = make(map[string]int32, 16)
	}
	if id, ok := b.intern[key]; ok {
		return id
	}
	id := int32(len(b.Dict))
	b.Dict = append(b.Dict, key)
	b.intern[key] = id
	return id
}

// Append adds one record given an already-interned stratum ID.
func (b *EventBatch) Append(stratum int32, value float64, nanos int64) {
	b.Strata = append(b.Strata, stratum)
	b.Values = append(b.Values, value)
	b.Times = append(b.Times, nanos)
}

// AppendEvent adds one record in row form — the bridge from the
// decoded-record world into a columnar batch.
func (b *EventBatch) AppendEvent(e Event) {
	b.Append(b.Intern(e.Stratum), e.Value, TimeToNanos(e.Time))
}

// EventAt materializes record i in row form.
func (b *EventBatch) EventAt(i int) Event {
	return Event{
		Stratum: b.Dict[b.Strata[i]],
		Value:   b.Values[i],
		Time:    TimeFromNanos(b.Times[i]),
	}
}

// Events materializes the whole batch as a row-form slice.
func (b *EventBatch) Events() []Event {
	out := make([]Event, b.Len())
	for i := range out {
		out[i] = b.EventAt(i)
	}
	return out
}

// MaxTime returns the latest non-zero time in [from, to), or the zero
// time when the range has none.
func (b *EventBatch) MaxTime(from, to int) time.Time {
	max := int64(ZeroTimeNanos)
	for _, n := range b.Times[from:to] {
		if n > max {
			max = n
		}
	}
	return TimeFromNanos(max)
}

// TimeOrdered reports whether the batch's times are non-decreasing —
// the overwhelmingly common case for a single partition's append-ordered
// records, which lets consumers skip a re-sort.
func (b *EventBatch) TimeOrdered() bool {
	for i := 1; i < len(b.Times); i++ {
		if b.Times[i] < b.Times[i-1] {
			return false
		}
	}
	return true
}

// SortByTime stable-sorts the batch's records by time in place. Only
// the owner of a batch (refs not yet shared) may call it.
func (b *EventBatch) SortByTime() {
	if b.TimeOrdered() {
		return
	}
	n := b.Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool { return b.Times[perm[i]] < b.Times[perm[j]] })
	strata := make([]int32, n)
	values := make([]float64, n)
	times := make([]int64, n)
	for i, p := range perm {
		strata[i] = b.Strata[p]
		values[i] = b.Values[p]
		times[i] = b.Times[p]
	}
	copy(b.Strata, strata)
	copy(b.Values, values)
	copy(b.Times, times)
}
