// Package xrand provides a small, deterministic, allocation-free random
// number generator plus the distribution samplers the StreamApprox
// workloads need (uniform, Gaussian, Poisson, exponential, Zipf).
//
// The generator is splitmix64: a 64-bit state advanced by a Weyl constant
// and finalized with two xor-shift-multiply rounds. It is fast, passes
// BigCrush, and — unlike math/rand's global source — is explicitly seeded
// so every experiment in this repository is reproducible bit-for-bit.
//
// Rand is NOT safe for concurrent use; each worker goroutine owns its own
// instance (see Split).
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator.
type Rand struct {
	state uint64

	// Cached second value from the Box-Muller transform.
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded with seed. Two generators constructed with
// the same seed produce identical sequences.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives a new independent generator from r. The derived stream is
// decorrelated from r's by an extra finalization round, which makes Split
// suitable for handing one generator to each of w workers.
func (r *Rand) Split() *Rand {
	return New(mix(r.Uint64()))
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) {
	r.state = seed
	r.hasGauss = false
}

// State captures the generator's full state for checkpointing.
type State struct {
	Seed     uint64  `json:"seed"`
	HasGauss bool    `json:"hasGauss"`
	Gauss    float64 `json:"gauss"`
}

// State returns the generator's current state.
func (r *Rand) State() State {
	return State{Seed: r.state, HasGauss: r.hasGauss, Gauss: r.gauss}
}

// SetState restores a previously captured state; the generator then
// produces exactly the sequence it would have produced.
func (r *Rand) SetState(s State) {
	r.state = s.Seed
	r.hasGauss = s.HasGauss
	r.gauss = s.Gauss
}

func mix(z uint64) uint64 {
	z ^= z >> 33
	z *= 0xff51afd7ed558ccd
	z ^= z >> 33
	z *= 0xc4ceb9fe1a85ec53
	z ^= z >> 33
	return z
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand, because a non-positive bound is a programming error.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method (unbiased).
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using
// the Box-Muller transform with second-value caching.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Gaussian returns a normal variate with the given mean and stddev.
func (r *Rand) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with mean lambda.
//
// Three regimes:
//   - lambda <= 0: returns 0 (degenerate).
//   - lambda < 30: Knuth's product-of-uniforms method (exact).
//   - otherwise: normal approximation N(lambda, lambda), rounded and
//     clamped at zero. For the workloads in this repository lambda is
//     either small (10, 1000 uses the exact/approx boundary comfortably)
//     or enormous (1e8, where the relative error of the approximation is
//     ~1e-4 and irrelevant to sampling-accuracy experiments).
func (r *Rand) Poisson(lambda float64) int64 {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		var k int64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		v := math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64())
		if v < 0 {
			return 0
		}
		return int64(v)
	}
}

// Zipf samples Zipf-distributed values over [0, n) with exponent s > 0
// via a precomputed cumulative distribution and binary search. The
// workloads use small n (protocol classes, boroughs, flow-size buckets),
// so the O(n) setup and O(log n) draw are a non-issue and the
// implementation is trivially auditable.
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf returns a Zipf sampler over {0, 1, ..., n-1} with exponent s > 0.
// Rank 0 is the most popular element.
func NewZipf(r *Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf called with non-positive n")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{r: r, cdf: cdf}
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
