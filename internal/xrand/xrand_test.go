package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently-seeded generators collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("standard normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("standard normal variance = %v, want ~1", variance)
	}
}

func TestGaussianMoments(t *testing.T) {
	r := New(4)
	const n = 200000
	const mu, sigma = 1000.0, 50.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Gaussian(mu, sigma)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-mu) > 1 {
		t.Errorf("mean = %v, want ~%v", mean, mu)
	}
	if math.Abs(sd-sigma) > 1 {
		t.Errorf("stddev = %v, want ~%v", sd, sigma)
	}
}

func TestPoissonSmallLambda(t *testing.T) {
	r := New(5)
	const n = 200000
	const lambda = 10.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(r.Poisson(lambda))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-lambda) > 0.1 {
		t.Errorf("Poisson(%v) mean = %v", lambda, mean)
	}
	if math.Abs(variance-lambda) > 0.3 {
		t.Errorf("Poisson(%v) variance = %v", lambda, variance)
	}
}

func TestPoissonLargeLambda(t *testing.T) {
	r := New(6)
	const n = 50000
	const lambda = 1e8
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(lambda))
	}
	mean := sum / n
	// Relative error should be far below the sampling-noise scale.
	if math.Abs(mean-lambda)/lambda > 1e-4 {
		t.Errorf("Poisson(%v) mean = %v (relative error too large)", lambda, mean)
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := New(8)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-5); got != 0 {
		t.Errorf("Poisson(-5) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(10)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Errorf("shuffle lost elements: %v", s)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	child := parent.Split()
	// The child stream must not be a shifted copy of the parent stream.
	a, b := New(11), child
	matches := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Errorf("split stream overlaps parent stream (%d matches)", matches)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(12)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 1.2, 10)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate and counts must be monotonically non-increasing
	// in expectation; allow small noise by comparing rank 0 vs rank 9.
	if counts[0] <= counts[9]*3 {
		t.Errorf("Zipf skew too weak: first=%d last=%d", counts[0], counts[9])
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("Zipf rank %d never drawn", i)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(New(1), 1.0, 0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(14)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkGaussian(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Gaussian(1000, 50)
	}
}
