package core

import (
	"math"
	"testing"
	"time"

	"streamapprox/internal/estimate"
	"streamapprox/internal/query"
	"streamapprox/internal/stream"
	"streamapprox/internal/workload"
	"streamapprox/internal/xrand"
)

// gaussianStream generates the §5.1 synthetic workload: three Gaussian
// sub-streams at equal rates for the given duration.
func gaussianStream(t testing.TB, seconds int) []stream.Event {
	t.Helper()
	rng := xrand.New(42)
	return workload.Generate(rng, time.Duration(seconds)*time.Second,
		workload.PaperGaussian(2000, 2000, 2000)...)
}

func trueSum(events []stream.Event) float64 {
	var s float64
	for _, e := range events {
		s += e.Value
	}
	return s
}

func TestSystemStrings(t *testing.T) {
	for _, s := range Systems() {
		if s.String() == "" || s.String()[0] == 'S' {
			t.Errorf("System %d has suspicious name %q", int(s), s.String())
		}
	}
	if System(99).String() != "System(99)" {
		t.Error("unknown system name")
	}
	if !NativeFlink.IsNative() || SparkApprox.IsNative() {
		t.Error("IsNative broken")
	}
	if !FlinkApprox.IsPipelined() || SparkSTS.IsPipelined() {
		t.Error("IsPipelined broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Workers != 4 || c.BatchInterval != 500*time.Millisecond ||
		c.WindowSize != 10*time.Second || c.WindowSlide != 5*time.Second ||
		c.Fraction != 1 || c.Query == nil || c.Seed == 0 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestAllSystemsRun(t *testing.T) {
	events := gaussianStream(t, 12)
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			stats, err := Run(Config{System: sys, Fraction: 0.5, Seed: 7}, events)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Items != int64(len(events)) {
				t.Errorf("Items = %d, want %d", stats.Items, len(events))
			}
			if len(stats.Results) == 0 {
				t.Fatal("no window results")
			}
			if stats.Throughput <= 0 {
				t.Error("non-positive throughput")
			}
			// Every window must have observed items and produced a value.
			for _, r := range stats.Results {
				if r.Items <= 0 {
					t.Errorf("window %v observed no items", r.Window)
				}
				if r.Result.Overall.Value <= 0 {
					t.Errorf("window %v estimate %v", r.Window, r.Result.Overall.Value)
				}
			}
		})
	}
}

func TestNativeSystemsAreExact(t *testing.T) {
	events := gaussianStream(t, 12)
	truth := GroundTruth(Config{}, events)
	for _, sys := range []System{NativeSpark, NativeFlink} {
		stats, err := Run(Config{System: sys, Seed: 3}, events)
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.Results) != len(truth) {
			t.Fatalf("%v produced %d windows, truth has %d", sys, len(stats.Results), len(truth))
		}
		for i, r := range stats.Results {
			want := truth[i].Result.Overall.Value
			if rel := estimate.AccuracyLoss(r.Result.Overall.Value, want); rel > 1e-9 {
				t.Errorf("%v window %d: %v vs exact %v (loss %v)",
					sys, i, r.Result.Overall.Value, want, rel)
			}
			if r.Result.Overall.Bound != 0 {
				t.Errorf("%v window %d: exact result has bound %v", sys, i, r.Result.Overall.Bound)
			}
		}
	}
}

func TestApproxSystemsAccuracy(t *testing.T) {
	events := gaussianStream(t, 12)
	truth := GroundTruth(Config{}, events)
	for _, sys := range []System{SparkApprox, FlinkApprox, SparkSTS} {
		stats, err := Run(Config{System: sys, Fraction: 0.6, Seed: 5}, events)
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.Results) != len(truth) {
			t.Fatalf("%v: %d windows vs %d", sys, len(stats.Results), len(truth))
		}
		var worst float64
		for i, r := range stats.Results {
			loss := estimate.AccuracyLoss(r.Result.Overall.Value, truth[i].Result.Overall.Value)
			if loss > worst {
				worst = loss
			}
		}
		// Stratified sampling at 60% on this workload should be well
		// under 5% loss per window (the paper reports <1% average).
		if worst > 0.05 {
			t.Errorf("%v worst-window accuracy loss = %v", sys, worst)
		}
	}
}

func TestApproxSampledLessThanNative(t *testing.T) {
	events := gaussianStream(t, 12)
	approx, err := Run(Config{System: SparkApprox, Fraction: 0.2, Seed: 11}, events)
	if err != nil {
		t.Fatal(err)
	}
	native, err := Run(Config{System: NativeSpark, Seed: 11}, events)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Sampled >= native.Sampled {
		t.Errorf("approx sampled %d >= native %d", approx.Sampled, native.Sampled)
	}
	if approx.Sampled <= 0 {
		t.Error("approx sampled nothing")
	}
}

func TestErrorBoundsContainTruthMostly(t *testing.T) {
	events := gaussianStream(t, 40)
	truth := GroundTruth(Config{}, events)
	covered, total := 0, 0
	for seed := uint64(13); seed < 16; seed++ {
		stats, err := Run(Config{System: SparkApprox, Fraction: 0.3, Seed: seed}, events)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range stats.Results {
			total++
			if r.Result.Overall.Contains(truth[i].Result.Overall.Value) {
				covered++
			}
		}
	}
	if total < 20 {
		t.Fatalf("only %d windows observed", total)
	}
	// 95% nominal coverage; allow generous Monte-Carlo slack.
	if rate := float64(covered) / float64(total); rate < 0.85 {
		t.Errorf("95%% bounds covered truth in only %d/%d windows (%.2f)", covered, total, rate)
	}
}

func TestGroupByQueryAcrossSystems(t *testing.T) {
	rng := xrand.New(77)
	events := workload.NetFlowEvents(rng, 120000, 20*time.Second)
	cfg := Config{
		System:   SparkApprox,
		Fraction: 0.6,
		Query:    query.NewGroupBySum(estimate.Conf95),
		Seed:     17,
	}
	truth := GroundTruth(cfg, events)
	stats, err := Run(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range stats.Results {
		for _, proto := range []string{"tcp", "udp", "icmp"} {
			want, ok := truth[i].Result.Groups[proto]
			if !ok {
				continue
			}
			got, ok := r.Result.Groups[proto]
			if !ok {
				t.Errorf("window %d missing group %s", i, proto)
				continue
			}
			if loss := estimate.AccuracyLoss(got.Value, want.Value); loss > 0.25 {
				t.Errorf("window %d %s: loss %v (got %v want %v)", i, proto, loss, got.Value, want.Value)
			}
		}
	}
}

func TestGroundTruthMatchesDirectSum(t *testing.T) {
	events := gaussianStream(t, 6)
	truth := GroundTruth(Config{WindowSize: 100 * time.Second, WindowSlide: 100 * time.Second}, events)
	var total float64
	for _, r := range truth {
		total += r.Result.Overall.Value
	}
	if want := trueSum(events); math.Abs(total-want)/want > 1e-9 {
		t.Errorf("ground truth sum %v, direct %v", total, want)
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	events := gaussianStream(t, 8)
	a, err := Run(Config{System: SparkApprox, Fraction: 0.4, Seed: 99}, events)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{System: SparkApprox, Fraction: 0.4, Seed: 99}, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("window counts differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i].Result.Overall.Value != b.Results[i].Result.Overall.Value {
			t.Errorf("window %d differs across same-seed runs", i)
		}
	}
}

func TestSRSMissesRareStratumButOASRSDoesNot(t *testing.T) {
	// The central qualitative claim (Fig. 7): with heavy skew, OASRS keeps
	// the rare-but-significant stratum while SRS can miss it.
	rng := xrand.New(21)
	events := workload.Generate(rng, 12*time.Second, workload.SkewGaussian(10000)...)
	cfg := Config{Fraction: 0.1, Seed: 23, Query: query.NewGroupByCount(estimate.Conf95)}

	cfg.System = SparkApprox
	approx, err := Run(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range approx.Results {
		if _, ok := r.Result.Groups["C"]; !ok {
			t.Errorf("OASRS window %d lost rare stratum C", i)
		}
	}
}
