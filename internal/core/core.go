// Package core wires the substrates into the six systems the paper
// evaluates (§5):
//
//   - SparkApprox: StreamApprox on the batched engine — OASRS sampling
//     on-the-fly *before* dataset formation (the ApproxKafkaRDD path).
//   - FlinkApprox: StreamApprox on the pipelined engine — an OASRS
//     sampling operator in the operator chain (§4.2.2).
//   - SparkSRS: the improved baseline using Spark's simple random
//     sampling applied to each formed micro-batch dataset.
//   - SparkSTS: the improved baseline using Spark's stratified sampling
//     (groupByKey shuffle + per-stratum random sort) per micro-batch.
//   - NativeSpark / NativeFlink: no sampling.
//
// All systems execute the same sliding-window linear query and produce
// per-window approximate results with error bounds.
package core

import (
	"fmt"
	"time"

	"streamapprox/internal/estimate"
	"streamapprox/internal/query"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
	"streamapprox/internal/window"
)

// System identifies one of the evaluated systems.
type System int

// The six systems of §5.
const (
	SparkApprox System = iota + 1
	FlinkApprox
	SparkSRS
	SparkSTS
	NativeSpark
	NativeFlink
)

// String returns the system's name as used in the paper's figures.
func (s System) String() string {
	switch s {
	case SparkApprox:
		return "spark-streamapprox"
	case FlinkApprox:
		return "flink-streamapprox"
	case SparkSRS:
		return "spark-srs"
	case SparkSTS:
		return "spark-sts"
	case NativeSpark:
		return "native-spark"
	case NativeFlink:
		return "native-flink"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// IsNative reports whether the system processes the full stream.
func (s System) IsNative() bool { return s == NativeSpark || s == NativeFlink }

// IsPipelined reports whether the system runs on the pipelined engine.
func (s System) IsPipelined() bool { return s == FlinkApprox || s == NativeFlink }

// Systems returns all six systems in figure order.
func Systems() []System {
	return []System{FlinkApprox, SparkApprox, SparkSRS, SparkSTS, NativeFlink, NativeSpark}
}

// Config configures one run.
type Config struct {
	// System selects the execution and sampling strategy.
	System System
	// Fraction is the sampling fraction in (0, 1]; ignored by native
	// systems.
	Fraction float64
	// Workers is the engine parallelism (pool size for batch engines,
	// replica count for pipelined engines). Defaults to 4.
	Workers int
	// BatchInterval is the micro-batch interval for batch engines
	// (default 500ms, the paper's midpoint).
	BatchInterval time.Duration
	// WindowSize and WindowSlide configure the sliding window
	// (defaults: 10s / 5s, the paper's case-study setting).
	WindowSize  time.Duration
	WindowSlide time.Duration
	// Query is the per-window computation (default: approximate SUM).
	Query query.Query
	// Confidence selects the error-bound level (default 95%).
	Confidence estimate.Confidence
	// Seed makes runs reproducible.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.BatchInterval <= 0 {
		c.BatchInterval = 500 * time.Millisecond
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 10 * time.Second
	}
	if c.WindowSlide <= 0 {
		c.WindowSlide = 5 * time.Second
	}
	if c.Confidence == 0 {
		c.Confidence = estimate.Conf95
	}
	if c.Query == nil {
		c.Query = query.NewSum(c.Confidence)
	}
	if c.Fraction <= 0 || c.Fraction > 1 {
		c.Fraction = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// WindowResult is one window's approximate query output.
type WindowResult struct {
	Window  window.Window
	Result  query.Result
	Items   int64 // items observed in the window (ΣCi)
	Sampled int   // items actually processed by the query (ΣYi)
}

// RunStats is the outcome of one run over a dataset.
type RunStats struct {
	System     System
	Results    []WindowResult
	Items      int64         // total items ingested
	Sampled    int64         // total items that reached the query
	Elapsed    time.Duration // processing time for the whole dataset (§6.1 latency)
	Throughput float64       // Items / Elapsed
}

// Run executes the configured system over a fully materialized,
// time-ordered event stream at maximum speed (the saturated-throughput
// methodology of §6.1) and returns per-window results plus run metrics.
func Run(cfg Config, events []stream.Event) (*RunStats, error) {
	cfg = cfg.withDefaults()
	var (
		stats *RunStats
		err   error
	)
	start := time.Now()
	if cfg.System.IsPipelined() {
		stats, err = runPipelined(cfg, events)
	} else {
		stats, err = runBatched(cfg, events)
	}
	if err != nil {
		return nil, err
	}
	stats.System = cfg.System
	stats.Elapsed = time.Since(start)
	stats.Items = int64(len(events))
	if stats.Elapsed > 0 {
		stats.Throughput = float64(stats.Items) / stats.Elapsed.Seconds()
	}
	for _, r := range stats.Results {
		stats.Sampled += int64(r.Sampled)
	}
	return stats, nil
}

// GroundTruth computes the exact per-window results (no sampling) used
// for accuracy-loss measurements. It bypasses the engines entirely.
func GroundTruth(cfg Config, events []stream.Event) []WindowResult {
	cfg = cfg.withDefaults()
	fired := window.Slice(events, cfg.WindowSize, cfg.WindowSlide)
	out := make([]WindowResult, 0, len(fired))
	for _, f := range fired {
		s := exactSample(f.Events)
		out = append(out, WindowResult{
			Window:  f.Window,
			Result:  cfg.Query.Evaluate(s),
			Items:   int64(len(f.Events)),
			Sampled: len(f.Events),
		})
	}
	return out
}

// exactSample wraps raw events as an unweighted (exact) sample.
func exactSample(events []stream.Event) *sampling.Sample {
	groups := stream.PartitionByStratum(events)
	s := &sampling.Sample{Strata: make([]sampling.StratumSample, 0, len(groups))}
	for stratum, items := range groups {
		s.Strata = append(s.Strata, sampling.StratumSample{
			Stratum: stratum,
			Items:   items,
			Count:   int64(len(items)),
			Weight:  1,
		})
	}
	return s
}

// mergeWindowSamples appends sub-samples (per micro-batch or per replica
// segment) belonging to the same window into one Sample. Sub-samples are
// independently drawn, so their variances add (Eq. 5); keeping them as
// separate strata entries preserves exactly that.
type windowAccumulator struct {
	assigner *window.Assigner
	pending  map[time.Time]*sampling.Sample
}

func newWindowAccumulator(size, slide time.Duration) *windowAccumulator {
	return &windowAccumulator{
		assigner: window.NewAssigner(size, slide),
		pending:  make(map[time.Time]*sampling.Sample),
	}
}

// add merges a segment sample (covering [segStart, segEnd)) into every
// window the segment belongs to.
func (w *windowAccumulator) add(segStart time.Time, s *sampling.Sample) {
	for _, win := range w.assigner.Assign(segStart) {
		agg, ok := w.pending[win.Start]
		if !ok {
			agg = &sampling.Sample{}
			w.pending[win.Start] = agg
		}
		agg.Strata = append(agg.Strata, s.Strata...)
	}
}

// drain evaluates and removes every window ending at or before cutoff;
// a zero cutoff drains everything.
func (w *windowAccumulator) drain(cutoff time.Time, q query.Query) []WindowResult {
	var out []WindowResult
	for start, s := range w.pending {
		win := window.Window{Start: start, End: start.Add(w.assigner.Size())}
		if !cutoff.IsZero() && win.End.After(cutoff) {
			continue
		}
		out = append(out, WindowResult{
			Window:  win,
			Result:  q.Evaluate(s),
			Items:   s.TotalCount(),
			Sampled: s.SampledCount(),
		})
		delete(w.pending, start)
	}
	sortResults(out)
	return out
}

func sortResults(rs []WindowResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Window.Start.Before(rs[j-1].Window.Start); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
