package core

import (
	"hash/fnv"
	"strconv"

	"streamapprox/internal/batch"
	"streamapprox/internal/stream"
)

// recordCost models the per-record processing cost a real engine pays for
// every item that reaches the data-parallel job: serialization of the
// record to bytes and a digest over them (standing in for Spark's
// record (de)serialization and Flink's network-buffer serialization).
// This cost is what makes sampling profitable — the entire premise of
// approximate computing is that processing an item downstream costs much
// more than deciding whether to keep it (§1).
func recordCost(e stream.Event) uint64 {
	// Encode the record (what the engine pays to ship it to a task)...
	var buf [48]byte
	b := strconv.AppendFloat(buf[:0], e.Value, 'g', -1, 64)
	mark := len(b)
	b = append(b, '|')
	b = append(b, e.Stratum...)
	b = strconv.AppendInt(b, e.Time.UnixNano(), 10)
	h := fnv.New64a()
	_, _ = h.Write(b)
	// ...and decode it on the task side.
	v, err := strconv.ParseFloat(string(b[:mark]), 64)
	if err != nil || v != e.Value {
		// Round-trip corruption is a programming error; fold it into the
		// checksum rather than panicking in a hot loop.
		return h.Sum64() ^ 1
	}
	return h.Sum64()
}

// jobResult is the output of the data-parallel job over one batch.
type jobResult struct {
	sum      float64
	checksum uint64
	count    int64
}

func (a jobResult) merge(b jobResult) jobResult {
	return jobResult{
		sum:      a.sum + b.sum,
		checksum: a.checksum ^ b.checksum,
		count:    a.count + b.count,
	}
}

// runJob executes the per-batch data-parallel job over a dataset: every
// record is serialized, digested and aggregated in parallel across the
// pool.
func runJob(ds *batch.Dataset) jobResult {
	return batch.Aggregate(ds,
		func() jobResult { return jobResult{} },
		func(acc jobResult, e stream.Event) jobResult {
			acc.sum += e.Value
			acc.checksum ^= recordCost(e)
			acc.count++
			return acc
		},
		jobResult.merge,
	)
}

// runJobSerial executes the same per-record work single-threaded — the
// form used inside a pipelined operator, which is already one parallel
// replica of the chain.
func runJobSerial(events []stream.Event) jobResult {
	var acc jobResult
	for _, e := range events {
		acc.sum += e.Value
		acc.checksum ^= recordCost(e)
		acc.count++
	}
	return acc
}
