package core

import (
	"testing"
	"time"

	"streamapprox/internal/batch"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
	"streamapprox/internal/window"
	"streamapprox/internal/xrand"
)

func batchEvents(n int, strata ...string) []stream.Event {
	if len(strata) == 0 {
		strata = []string{"s"}
	}
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Event, n)
	for i := range out {
		out[i] = stream.Event{
			Stratum: strata[i%len(strata)],
			Value:   float64(i),
			Time:    base.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}

func TestSampleApproxPreDatasetRespectsFraction(t *testing.T) {
	pool := batch.NewPool(4)
	defer pool.Close()
	rng := xrand.New(1)
	d := sampling.NewDistributedOASRS(1, pool.Size(), nil, rng.Split())
	cfg := Config{Fraction: 0.25}.withDefaults()
	cfg.Fraction = 0.25

	events := batchEvents(8000, "a", "b")
	// First batch over-allocates (no stratum history); the second batch
	// must honour the fraction.
	_ = sampleApproxPreDataset(cfg, pool, d, events)
	s := sampleApproxPreDataset(cfg, pool, d, events)
	got := float64(s.SampledCount()) / float64(len(events))
	if got > 0.30 || got < 0.15 {
		t.Errorf("steady-state sampled fraction = %.3f, want ≈0.25", got)
	}
	if s.TotalCount() != int64(len(events)) {
		t.Errorf("TotalCount = %d", s.TotalCount())
	}
}

func TestSampleSRSOnDatasetFractionAndWeight(t *testing.T) {
	pool := batch.NewPool(4)
	defer pool.Close()
	cfg := Config{Fraction: 0.5}.withDefaults()
	cfg.Fraction = 0.5
	events := batchEvents(4000, "a", "b", "c")
	s := sampleSRSOnDataset(cfg, pool, xrand.New(2), events)
	if len(s.Strata) != 1 || s.Strata[0].Stratum != sampling.SRSPseudoStratum {
		t.Fatalf("SRS sample shape: %+v", s.Strata)
	}
	got := float64(s.SampledCount()) / float64(len(events))
	if got < 0.48 || got > 0.52 {
		t.Errorf("SRS fraction = %.3f", got)
	}
	st := s.Strata[0]
	if int64(st.Weight*float64(len(st.Items))+0.5) != st.Count {
		t.Errorf("weight does not reconstruct count: W=%v Y=%d C=%d",
			st.Weight, len(st.Items), st.Count)
	}
}

func TestSampleSTSOnDatasetPerStratum(t *testing.T) {
	pool := batch.NewPool(4)
	defer pool.Close()
	cfg := Config{Fraction: 0.5}.withDefaults()
	cfg.Fraction = 0.5
	events := batchEvents(3000, "a", "b", "c")
	s := sampleSTSOnDataset(cfg, pool, xrand.New(3), events)
	if len(s.Strata) != 3 {
		t.Fatalf("STS strata = %d", len(s.Strata))
	}
	for _, st := range s.Strata {
		if st.Count != 1000 {
			t.Errorf("stratum %s count %d", st.Stratum, st.Count)
		}
		if len(st.Items) != 500 { // exact mode
			t.Errorf("stratum %s sampled %d, want 500", st.Stratum, len(st.Items))
		}
	}
}

func TestNativeDatasetSampleIsExact(t *testing.T) {
	pool := batch.NewPool(2)
	defer pool.Close()
	events := batchEvents(100, "x", "y")
	s := nativeDatasetSample(pool, events)
	if s.SampledCount() != 100 || s.TotalCount() != 100 {
		t.Errorf("native sample %d/%d", s.SampledCount(), s.TotalCount())
	}
	for _, st := range s.Strata {
		if st.Weight != 1 {
			t.Errorf("native weight = %v", st.Weight)
		}
	}
}

func TestSamplingOperatorSegments(t *testing.T) {
	collector := &segmentCollector{segments: make(map[time.Time][]*sampling.Sample)}
	op := &samplingOperator{
		slide:     5 * time.Second,
		fraction:  0.5,
		rng:       xrand.New(4),
		collector: collector,
	}
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	emit := func(stream.Event) {}
	// Three slide segments' worth of events.
	for sec := 0; sec < 15; sec++ {
		for k := 0; k < 100; k++ {
			op.Process(stream.Event{
				Stratum: "s", Value: 1,
				Time: base.Add(time.Duration(sec)*time.Second + time.Duration(k)*time.Millisecond),
			}, emit)
		}
	}
	op.Flush(emit)
	if got := len(collector.segments); got != 3 {
		t.Fatalf("operator produced %d segments, want 3", got)
	}
	for seg, samples := range collector.segments {
		var total int64
		for _, s := range samples {
			total += s.TotalCount()
		}
		if total != 500 {
			t.Errorf("segment %v counted %d items, want 500", seg, total)
		}
	}
}

func TestSamplingOperatorNativeKeepsAll(t *testing.T) {
	collector := &segmentCollector{segments: make(map[time.Time][]*sampling.Sample)}
	op := &samplingOperator{
		slide:     5 * time.Second,
		native:    true,
		rng:       xrand.New(5),
		collector: collector,
	}
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	emit := func(stream.Event) {}
	for i := 0; i < 1000; i++ {
		op.Process(stream.Event{Stratum: "s", Value: 1, Time: base.Add(time.Duration(i) * time.Millisecond)}, emit)
	}
	op.Flush(emit)
	var sampled int
	for _, samples := range collector.segments {
		for _, s := range samples {
			sampled += s.SampledCount()
		}
	}
	if sampled != 1000 {
		t.Errorf("native operator kept %d of 1000", sampled)
	}
}

func TestWindowAccumulatorAssignsToOverlappingWindows(t *testing.T) {
	acc := newWindowAccumulator(10*time.Second, 5*time.Second)
	base := time.Date(2017, 12, 11, 0, 0, 10, 0, time.UTC)
	s := &sampling.Sample{Strata: []sampling.StratumSample{{
		Stratum: "a", Count: 4, Weight: 1,
		Items: []stream.Event{{Stratum: "a", Value: 1}},
	}}}
	acc.add(base, s)
	// The segment at t=10s belongs to windows [5,15) and [10,20).
	if got := len(acc.pending); got != 2 {
		t.Fatalf("pending windows = %d, want 2", got)
	}
	results := acc.drain(time.Time{}, Config{}.withDefaults().Query)
	if len(results) != 2 {
		t.Fatalf("drained %d windows", len(results))
	}
	for _, r := range results {
		if r.Items != 4 {
			t.Errorf("window %v items %d", r.Window, r.Items)
		}
	}
}

func TestWindowAccumulatorDrainCutoff(t *testing.T) {
	acc := newWindowAccumulator(10*time.Second, 5*time.Second)
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	s := &sampling.Sample{Strata: []sampling.StratumSample{{Stratum: "a", Count: 1, Weight: 1}}}
	acc.add(base, s) // windows [-5,5) and [0,10)
	got := acc.drain(base.Add(6*time.Second), Config{}.withDefaults().Query)
	if len(got) != 1 {
		t.Fatalf("cutoff drain fired %d windows, want 1 ([-5,5))", len(got))
	}
	if !got[0].Window.End.Equal(base.Add(5 * time.Second)) {
		t.Errorf("fired window %v", got[0].Window)
	}
}

func TestRecordCostDeterministic(t *testing.T) {
	e := stream.Event{Stratum: "tcp", Value: 123.456, Time: time.Unix(1, 0)}
	if recordCost(e) != recordCost(e) {
		t.Error("recordCost not deterministic")
	}
	e2 := e
	e2.Value = 123.457
	if recordCost(e) == recordCost(e2) {
		t.Error("recordCost ignores the value")
	}
}

func TestRunJobCountsEverything(t *testing.T) {
	pool := batch.NewPool(4)
	defer pool.Close()
	ds := batch.NewDataset(pool, batchEvents(1234))
	res := runJob(ds)
	if res.count != 1234 {
		t.Errorf("job counted %d", res.count)
	}
	if res.sum == 0 || res.checksum == 0 {
		t.Error("job result fields not populated")
	}
	serial := runJobSerial(ds.Collect())
	if serial.count != res.count || serial.sum != res.sum {
		t.Errorf("serial job disagrees: %+v vs %+v", serial, res)
	}
}

func TestWindowHelpersSorted(t *testing.T) {
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	rs := []WindowResult{
		{Window: window.Window{Start: base.Add(10 * time.Second)}},
		{Window: window.Window{Start: base}},
		{Window: window.Window{Start: base.Add(5 * time.Second)}},
	}
	sortResults(rs)
	for i := 1; i < len(rs); i++ {
		if rs[i].Window.Start.Before(rs[i-1].Window.Start) {
			t.Fatal("sortResults did not sort")
		}
	}
}
