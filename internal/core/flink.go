package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"streamapprox/internal/pipeline"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// runPipelined executes the pipelined (Flink-like) systems: the stream is
// fanned out over `Workers` operator-chain replicas; each replica hosts a
// sampling operator (§4.2.2) that processes items one at a time and emits
// one sub-sample per slide segment ("the sampling operations are
// performed ... at every slide window interval in the Flink-based
// StreamApprox", §5.5). Segment sub-samples are merged into windows after
// the run.
func runPipelined(cfg Config, events []stream.Event) (*RunStats, error) {
	collector := &segmentCollector{segments: make(map[time.Time][]*sampling.Sample)}
	rng := xrand.New(cfg.Seed)
	rngs := make([]*xrand.Rand, cfg.Workers)
	for i := range rngs {
		rngs[i] = rng.Split()
	}
	perReplicaFraction := cfg.Fraction

	pipeline.RunParallel(context.Background(), cfg.Workers,
		stream.NewSliceSource(events),
		stream.SinkFunc(func(stream.Event) {}), // sampling op emits nothing downstream
		func(replica int) []pipeline.Operator {
			return []pipeline.Operator{&samplingOperator{
				slide:     cfg.WindowSlide,
				fraction:  perReplicaFraction,
				native:    cfg.System.IsNative(),
				rng:       rngs[replica],
				collector: collector,
			}}
		})

	// Merge replica sub-samples per segment, assign segments to windows,
	// and evaluate.
	acc := newWindowAccumulator(cfg.WindowSize, cfg.WindowSlide)
	for _, seg := range collector.sorted() {
		merged := &sampling.Sample{}
		for _, s := range collector.segments[seg] {
			merged.Strata = append(merged.Strata, s.Strata...)
		}
		acc.add(seg, merged)
	}
	stats := &RunStats{Results: acc.drain(time.Time{}, cfg.Query)}
	return stats, nil
}

// segmentCollector gathers per-replica, per-segment sub-samples.
type segmentCollector struct {
	mu       sync.Mutex
	segments map[time.Time][]*sampling.Sample
}

func (c *segmentCollector) push(segStart time.Time, s *sampling.Sample) {
	if len(s.Strata) == 0 {
		return
	}
	c.mu.Lock()
	c.segments[segStart] = append(c.segments[segStart], s)
	c.mu.Unlock()
}

func (c *segmentCollector) sorted() []time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Time, 0, len(c.segments))
	for t := range c.segments {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// samplingOperator is the Flink sampling operator of §4.2.2. In native
// mode it retains every item (exact, weight 1); otherwise it runs OASRS
// over each slide segment. Either way items are consumed on the fly and
// nothing is forwarded downstream — the query runs over the per-segment
// samples.
type samplingOperator struct {
	slide     time.Duration
	fraction  float64
	native    bool
	rng       *xrand.Rand
	collector *segmentCollector

	segStart  time.Time
	sampler   *sampling.OASRS
	exact     []stream.Event
	count     int
	lastCount int
}

// defaultSegmentBudget bootstraps the first segment before any arrival
// count is known.
const defaultSegmentBudget = 64

var _ pipeline.Operator = (*samplingOperator)(nil)

// Process implements pipeline.Operator.
func (o *samplingOperator) Process(e stream.Event, _ func(stream.Event)) {
	seg := e.Time.Truncate(o.slide)
	if o.segStart.IsZero() {
		o.startSegment(seg)
	} else if seg.After(o.segStart) {
		o.finishSegment()
		o.startSegment(seg)
	}
	o.count++
	if o.native {
		o.exact = append(o.exact, e)
		return
	}
	o.sampler.Add(e)
}

// Flush implements pipeline.Operator.
func (o *samplingOperator) Flush(func(stream.Event)) {
	if !o.segStart.IsZero() {
		o.finishSegment()
	}
}

func (o *samplingOperator) startSegment(seg time.Time) {
	o.segStart = seg
	o.count = 0
	if o.native {
		o.exact = nil
		return
	}
	// Budget for the segment: fraction of the previous segment's item
	// count, or a bootstrap default for the first segment. OASRS adapts
	// per segment exactly as the cost function re-runs per interval
	// (Algorithm 2). The sampler instance persists across segments so its
	// per-stratum sizing tracks the observed sub-stream set.
	budget := int(o.fraction * float64(o.lastCount))
	if budget < 1 {
		budget = defaultSegmentBudget
	}
	if o.sampler == nil {
		o.sampler = sampling.NewOASRS(budget, nil, o.rng)
		return
	}
	o.sampler.SetBudget(budget)
}

func (o *samplingOperator) finishSegment() {
	var s *sampling.Sample
	if o.native {
		s = exactSample(o.exact)
		o.exact = nil
	} else {
		s = o.sampler.Finish()
	}
	o.lastCount = o.count
	// The items that survive sampling flow to the aggregation operator
	// and pay the per-record processing cost there (all items, for the
	// native system). The operator chain is already one parallel replica,
	// so the job runs serially here.
	for i := range s.Strata {
		_ = runJobSerial(s.Strata[i].Items)
	}
	o.collector.push(o.segStart, s)
}
