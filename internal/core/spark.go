package core

import (
	"time"

	"streamapprox/internal/batch"
	"streamapprox/internal/sampling"
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// runBatched executes the micro-batch (Spark Streaming–like) systems.
//
// Per micro-batch, the four batch systems differ exactly where the paper
// says they do (§4.2.1, §5.2):
//
//	SparkApprox: events -> OASRS (pre-dataset, on the fly) -> small
//	             Dataset of survivors -> job
//	SparkSRS:    events -> full Dataset -> per-partition random-sort
//	             SRS on the dataset -> job
//	SparkSTS:    events -> full Dataset -> groupByKey shuffle + barrier +
//	             per-stratum random sort -> job
//	NativeSpark: events -> full Dataset -> job over everything
func runBatched(cfg Config, events []stream.Event) (*RunStats, error) {
	pool := batch.NewPool(cfg.Workers)
	defer pool.Close()
	rng := xrand.New(cfg.Seed)

	batches := batch.Split(stream.NewSliceSource(events), cfg.BatchInterval)
	acc := newWindowAccumulator(cfg.WindowSize, cfg.WindowSlide)
	stats := &RunStats{}

	// The OASRS sampler persists across batches so its per-stratum sizing
	// adapts from one interval to the next (Algorithm 3's Update(S)).
	var oasrs *sampling.DistributedOASRS
	if cfg.System == SparkApprox {
		oasrs = sampling.NewDistributedOASRS(1, pool.Size(), nil, rng.Split())
	}

	for _, b := range batches {
		var s *sampling.Sample
		switch cfg.System {
		case SparkApprox:
			s = sampleApproxPreDataset(cfg, pool, oasrs, b.Events)
		case SparkSRS:
			s = sampleSRSOnDataset(cfg, pool, rng, b.Events)
		case SparkSTS:
			s = sampleSTSOnDataset(cfg, pool, rng, b.Events)
		default: // NativeSpark
			s = nativeDatasetSample(pool, b.Events)
		}
		acc.add(b.Start, s)
		stats.Results = append(stats.Results, acc.drain(b.Start, cfg.Query)...)
	}
	stats.Results = append(stats.Results, acc.drain(time.Time{}, cfg.Query)...)
	return stats, nil
}

// sampleApproxPreDataset is the ApproxKafkaRDD path: the batch's items
// stream through a distributed OASRS sampler with no synchronization, and
// only the surviving sample is materialized into a Dataset for the
// data-parallel job. The job's input is |sample| items instead of
// |batch| items — the cost the figures measure.
func sampleApproxPreDataset(cfg Config, pool *batch.Pool, d *sampling.DistributedOASRS, events []stream.Event) *sampling.Sample {
	budget := int(cfg.Fraction * float64(len(events)))
	if budget < 1 {
		budget = 1
	}
	d.SetBudget(budget)
	// Workers consume disjoint round-robin shards of the incoming batch,
	// each feeding its own lock-free local reservoir set.
	shards := stream.PartitionRoundRobin(events, pool.Size())
	pool.RunN(len(shards), func(i int) {
		for _, e := range shards[i] {
			d.AddAt(i, e)
		}
	})
	s := d.Finish()
	// Materialize only the sampled items into the engine dataset and run
	// the data-parallel job over the survivors; discarded items never pay
	// the per-record job cost.
	ds := batch.NewDataset(pool, sampledEvents(s))
	_ = runJob(ds)
	return s
}

// sampleSRSOnDataset forms the full Dataset first (the cost StreamApprox
// avoids) and then runs Spark's `sample` on it: per-partition random-sort
// selection at the configured fraction, merged into one uniform sample.
func sampleSRSOnDataset(cfg Config, pool *batch.Pool, rng *xrand.Rand, events []stream.Event) *sampling.Sample {
	ds := batch.NewDataset(pool, events)
	parts := ds.NumPartitions()
	rngs := make([]*xrand.Rand, parts)
	for i := range rngs {
		rngs[i] = rng.Split()
	}
	partSamples := make([]*sampling.Sample, parts)
	ds.ForeachPartition(func(i int, part []stream.Event) {
		partSamples[i] = sampling.NewRandomSortSRS(cfg.Fraction, rngs[i]).SampleBatch(part)
	})
	// Merge the per-partition uniform samples: counts add, items concat,
	// one pseudo-stratum with weight totalC/totalY.
	merged := &sampling.StratumSample{Stratum: sampling.SRSPseudoStratum}
	for _, ps := range partSamples {
		for _, st := range ps.Strata {
			merged.Items = append(merged.Items, st.Items...)
			merged.Count += st.Count
		}
	}
	if y := len(merged.Items); y > 0 && merged.Count > int64(y) {
		merged.Weight = float64(merged.Count) / float64(y)
	} else {
		merged.Weight = 1
	}
	s := &sampling.Sample{Strata: []sampling.StratumSample{*merged}}
	jobDS := batch.NewDataset(pool, sampledEvents(s))
	_ = runJob(jobDS)
	return s
}

// sampleSTSOnDataset forms the full Dataset and then runs Spark's
// sampleByKeyExact: the groupByKey shuffle (executed, with its barriers)
// followed by per-stratum random-sort sampling proportional to stratum
// size.
func sampleSTSOnDataset(cfg Config, pool *batch.Pool, rng *xrand.Rand, events []stream.Event) *sampling.Sample {
	ds := batch.NewDataset(pool, events)
	// The dataset must exist before sampling; STS then re-shuffles it.
	sts := sampling.NewStratifiedSTS(cfg.Fraction, pool.Size(), true, rng.Split())
	s := sts.SampleBatch(ds.Collect())
	jobDS := batch.NewDataset(pool, sampledEvents(s))
	_ = runJob(jobDS)
	return s
}

// nativeDatasetSample runs the job over the complete batch: the exact
// sample is the batch itself.
func nativeDatasetSample(pool *batch.Pool, events []stream.Event) *sampling.Sample {
	ds := batch.NewDataset(pool, events)
	_ = runJob(ds)
	return exactSample(ds.Collect())
}

// sampledEvents flattens a sample's items.
func sampledEvents(s *sampling.Sample) []stream.Event {
	out := make([]stream.Event, 0, s.SampledCount())
	for i := range s.Strata {
		out = append(out, s.Strata[i].Items...)
	}
	return out
}
