// Served queries: run the whole serving stack in one process — a
// brokerd-style aggregator, a replayed event stream, and a saproxd
// query service — then act as an HTTP client: register a MEAN query and
// read the merged per-window "estimate ± error" results the four shard
// workers produce.
//
// Against a real deployment the in-process setup is replaced by the
// three daemons (see README.md):
//
//	brokerd -addr :9092 -topic stream -partitions 4
//	saproxd -broker 127.0.0.1:9092 -topic stream -addr :9090
//	replay  -addr 127.0.0.1:9092 -topic stream -dataset netflow
//
// and this program's HTTP calls work unchanged against
// http://127.0.0.1:9090.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/server"
	"streamapprox/internal/stream"
	"streamapprox/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "served-queries:", err)
		os.Exit(1)
	}
}

func run() error {
	// Aggregator tier: a 4-partition topic; keyed records pin each
	// source to a stable partition, so every saproxd shard samples a
	// disjoint slice of the sources.
	b := broker.New()
	if err := b.CreateTopic("stream", 4); err != nil {
		return err
	}

	// Serving tier: saproxd over the broker, one shard per partition.
	srv, err := server.New(server.Config{Cluster: b, Topic: "stream", PollBackoff: time.Millisecond})
	if err != nil {
		return err
	}
	defer srv.Close()
	api := httptest.NewServer(srv.Handler())
	defer api.Close()

	// Replay tier: feed 30 seconds of an 8-sensor stream at full speed.
	go func() {
		r := &workload.Replayer{ItemsPerMessage: 200}
		_, _ = r.Replay(context.Background(), b, "stream", makeStream())
	}()

	// --- The client side: plain HTTP against the saproxd API. ---

	// Register: mean over a 5s window sliding by 2.5s, sampling 40%.
	resp, err := http.Post(api.URL+"/v1/queries", "application/json", strings.NewReader(
		`{"kind":"mean","window":"5s","slide":"2.5s","fraction":0.4}`))
	if err != nil {
		return err
	}
	var info struct {
		ID     string `json:"id"`
		Shards int    `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return err
	}
	_ = resp.Body.Close()
	fmt.Printf("registered query %s across %d shard workers\n\n", info.ID, info.Shards)

	// Stream merged windows as they fire.
	streamResp, err := http.Get(api.URL + "/v1/queries/" + info.ID + "/stream?since=-1")
	if err != nil {
		return err
	}
	defer func() { _ = streamResp.Body.Close() }()

	fmt.Println("window                mean ± bound        items   sampled  shards")
	dec := json.NewDecoder(streamResp.Body)
	for seen := 0; seen < 8; seen++ {
		var w struct {
			Start   time.Time `json:"start"`
			End     time.Time `json:"end"`
			Value   float64   `json:"value"`
			Error   float64   `json:"error"`
			Items   int64     `json:"items"`
			Sampled int       `json:"sampled"`
			Shards  int       `json:"shards"`
		}
		if err := dec.Decode(&w); err != nil {
			return fmt.Errorf("stream ended early: %w", err)
		}
		fmt.Printf("[%s, %s)  %8.2f ± %-8.2f %7d %8d %7d\n",
			w.Start.Format("15:04:05"), w.End.Format("15:04:05"),
			w.Value, w.Error, w.Items, w.Sampled, w.Shards)
	}

	// A point-in-time status read, like a dashboard would do.
	resp, err = http.Get(api.URL + "/v1/queries/" + info.ID)
	if err != nil {
		return err
	}
	var status struct {
		Windows int64   `json:"windows"`
		Records []int64 `json:"shard_records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return err
	}
	_ = resp.Body.Close()
	fmt.Printf("\n%d windows served; per-shard records consumed: %v\n", status.Windows, status.Records)
	return nil
}

// makeStream synthesizes 30 seconds of 8 sensors at 1 kHz each.
func makeStream() []stream.Event {
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	var events []stream.Event
	for ms := 0; ms < 30000; ms++ {
		t := base.Add(time.Duration(ms) * time.Millisecond)
		for s := 0; s < 8; s++ {
			events = append(events, stream.Event{
				Stratum: fmt.Sprintf("sensor-%d", s),
				Value:   float64(10*(s+1)) + rng.NormFloat64(),
				Time:    t,
			})
		}
	}
	return events
}
