// Quickstart: approximate a sliding-window SUM over a three-source
// stream with OASRS sampling at 20%, and compare every window's estimate
// (with its 95% error bound) against the exact answer.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"streamapprox"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	events := makeStream()

	// Approximate: sample 20% of every window with OASRS.
	report, err := streamapprox.Run(streamapprox.Config{
		Sampler:  streamapprox.OASRS,
		Fraction: 0.20,
		Query:    streamapprox.Sum,
		Seed:     1,
	}, events)
	if err != nil {
		return err
	}

	// Exact: the same query without sampling, for comparison.
	exact, err := streamapprox.Exact(streamapprox.Config{Query: streamapprox.Sum}, events)
	if err != nil {
		return err
	}

	fmt.Printf("processed %d items (%d sampled, %.1f%%) at %.0f items/s\n\n",
		report.Items, report.Sampled,
		100*float64(report.Sampled)/float64(report.Items), report.Throughput)
	fmt.Println("window                estimate ± bound          exact        in-bounds")
	for i, r := range report.Results {
		want := exact[i].Overall.Value
		lo, hi := r.Overall.Interval()
		fmt.Printf("[%s, %s)  %12.0f ± %-10.0f %12.0f  %v\n",
			r.Start.Format("15:04:05"), r.End.Format("15:04:05"),
			r.Overall.Value, r.Overall.Bound, want, want >= lo && want <= hi)
	}
	return nil
}

// makeStream synthesizes 30 seconds of events from three sources with
// very different value scales — the situation where stratified sampling
// matters.
func makeStream() []streamapprox.Event {
	rng := rand.New(rand.NewSource(7))
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	var events []streamapprox.Event
	for ms := 0; ms < 30000; ms++ {
		t := base.Add(time.Duration(ms) * time.Millisecond)
		events = append(events,
			streamapprox.Event{Stratum: "sensor-a", Value: 10 + 5*rng.NormFloat64(), Time: t},
			streamapprox.Event{Stratum: "sensor-b", Value: 1000 + 50*rng.NormFloat64(), Time: t},
		)
		// sensor-c is rare but carries large values: OASRS guarantees it
		// is never overlooked.
		if ms%100 == 0 {
			events = append(events, streamapprox.Event{
				Stratum: "sensor-c", Value: 100000 + 500*rng.NormFloat64(), Time: t,
			})
		}
	}
	return events
}
