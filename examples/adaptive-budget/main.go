// Adaptive budget: the §4.2.1 feedback mechanism in action. A Session is
// given a target error bound instead of a fixed fraction; when a
// window's relative error bound exceeds the target the sampling fraction
// grows, and when the bound is comfortably tight the fraction decays to
// reclaim throughput. Midway through the run the stream's variance
// explodes, and the controller reacts.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"streamapprox"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive-budget:", err)
		os.Exit(1)
	}
}

func run() error {
	session := streamapprox.NewSession(streamapprox.SessionConfig{
		Query:       streamapprox.Sum,
		Fraction:    0.05,  // deliberately too small for the target...
		TargetError: 0.002, // ...so the controller must grow it
		Seed:        21,
	})

	rng := rand.New(rand.NewSource(23))
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

	fmt.Println("window-start  rel-error-bound  fraction-after")
	for sec := 0; sec < 120; sec++ {
		// After a minute, the stream becomes far noisier: the fixed
		// fraction that was fine before no longer meets the target.
		sigma := 5.0
		if sec >= 60 {
			sigma = 80.0
		}
		for k := 0; k < 2000; k++ {
			ts := base.Add(time.Duration(sec)*time.Second +
				time.Duration(k)*time.Second/2000)
			if err := session.Push(streamapprox.Event{
				Stratum: "src", Value: 100 + sigma*rng.NormFloat64(), Time: ts,
			}); err != nil {
				return err
			}
		}
		for _, w := range session.Poll() {
			fmt.Printf("%s      %14.4f%%  %13.2f%%\n",
				w.Start.Format("15:04:05"),
				100*w.Overall.RelativeError(), 100*session.Fraction())
		}
	}
	results := session.Close()
	for _, w := range results {
		fmt.Printf("%s      %14.4f%%  %13.2f%%\n",
			w.Start.Format("15:04:05"),
			100*w.Overall.RelativeError(), 100*session.Fraction())
	}
	fmt.Printf("\nfinal sampling fraction: %.1f%% (started at 5.0%%)\n",
		100*session.Fraction())
	return nil
}
