// IoT sensor analytics (the paper's §7 stratification example): city
// temperature sensors each form one stratum; the incremental Session API
// estimates the city-wide mean temperature per sliding window while
// events arrive, polling results as windows complete.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"streamapprox"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "iot-sensors:", err)
		os.Exit(1)
	}
}

func run() error {
	session := streamapprox.NewSession(streamapprox.SessionConfig{
		Query:       streamapprox.Mean,
		WindowSize:  10 * time.Second,
		WindowSlide: 5 * time.Second,
		Fraction:    0.25,
		Seed:        9,
	})

	rng := rand.New(rand.NewSource(17))
	base := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)

	// 20 sensors around the city, each with its own microclimate; a
	// shared diurnal drift moves the true mean over time.
	type sensor struct {
		name string
		bias float64
		rate int // readings per second
	}
	sensors := make([]sensor, 20)
	for i := range sensors {
		sensors[i] = sensor{
			name: fmt.Sprintf("sensor-%02d", i),
			bias: -3 + 6*rng.Float64(),
			rate: 20 + rng.Intn(180), // heterogeneous arrival rates
		}
	}

	fmt.Println("window-start  est-mean(°C) ± bound    items  sampled")
	for sec := 0; sec < 60; sec++ {
		drift := 2 * math.Sin(float64(sec)/30*math.Pi)
		for _, s := range sensors {
			for k := 0; k < s.rate; k++ {
				ts := base.Add(time.Duration(sec)*time.Second +
					time.Duration(k)*time.Second/time.Duration(s.rate))
				reading := 21 + s.bias + drift + 0.4*rng.NormFloat64()
				if err := session.Push(streamapprox.Event{
					Stratum: s.name, Value: reading, Time: ts,
				}); err != nil {
					return err
				}
			}
		}
		// Collect any windows completed this second, as a live dashboard
		// would.
		for _, w := range session.Poll() {
			printWindow(w)
		}
	}
	for _, w := range session.Close() {
		printWindow(w)
	}
	return nil
}

func printWindow(w streamapprox.WindowResult) {
	fmt.Printf("%s      %6.2f ± %-8.3f    %6d  %6d\n",
		w.Start.Format("15:04:05"), w.Overall.Value, w.Overall.Bound,
		w.Items, w.Sampled)
}
