// NYC taxi ride analytics (the paper's §6.3 case study): estimate the
// average trip distance per start borough in each sliding window,
// trading accuracy for throughput across sampling fractions.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"streamapprox"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "taxi-rides:", err)
		os.Exit(1)
	}
}

func run() error {
	trips := makeTrips(300000)
	base := streamapprox.Config{Query: streamapprox.GroupByMean, Seed: 5}

	exact, err := streamapprox.Exact(base, trips)
	if err != nil {
		return err
	}

	fmt.Println("fraction  throughput(items/s)  mean-error  manhattan-mean  ewr-mean")
	for _, fraction := range []float64{0.10, 0.20, 0.40, 0.60, 0.80} {
		cfg := base
		cfg.Sampler = streamapprox.OASRS
		cfg.Fraction = fraction
		rep, err := streamapprox.Run(cfg, trips)
		if err != nil {
			return err
		}
		var errSum float64
		var n int
		var manhattan, ewr float64
		var windows int
		for i, r := range rep.Results {
			for borough, want := range exact[i].Groups {
				got, ok := r.Groups[borough]
				if !ok || want.Value == 0 {
					continue
				}
				errSum += math.Abs(got.Value-want.Value) / want.Value
				n++
			}
			if g, ok := r.Groups["manhattan"]; ok {
				manhattan += g.Value
			}
			if g, ok := r.Groups["ewr"]; ok {
				ewr += g.Value
			}
			windows++
		}
		fmt.Printf("%7.0f%%  %19.0f  %9.3f%%  %13.2fmi  %7.2fmi\n",
			fraction*100, rep.Throughput, 100*errSum/float64(n),
			manhattan/float64(windows), ewr/float64(windows))
	}
	fmt.Println("\nEWR (Newark airport) trips are <0.1% of rides but ~8x longer than")
	fmt.Println("Manhattan hops; stratified reservoir sampling keeps them represented")
	fmt.Println("at every fraction.")
	return nil
}

// makeTrips synthesizes borough-stratified trip records with the strong
// Manhattan skew of NYC yellow-cab pickups.
func makeTrips(n int) []streamapprox.Event {
	rng := rand.New(rand.NewSource(13))
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	type borough struct {
		name      string
		share     float64
		mu, sigma float64 // lognormal parameters of trip distance
	}
	boroughs := []borough{
		{"manhattan", 0.8780, 0.75, 0.55},
		{"brooklyn", 0.0640, 1.10, 0.60},
		{"queens", 0.0500, 2.20, 0.45},
		{"bronx", 0.0050, 1.30, 0.55},
		{"staten-island", 0.0020, 1.80, 0.50},
		{"ewr", 0.0010, 2.83, 0.18},
	}
	events := make([]streamapprox.Event, n)
	for i := range events {
		t := base.Add(time.Duration(i) * 100 * time.Microsecond)
		u := rng.Float64()
		acc := 0.0
		b := boroughs[len(boroughs)-1]
		for _, cand := range boroughs {
			acc += cand.share
			if u < acc {
				b = cand
				break
			}
		}
		dist := math.Exp(b.mu + b.sigma*rng.NormFloat64())
		if dist < 0.1 {
			dist = 0.1
		}
		events[i] = streamapprox.Event{Stratum: b.name, Value: dist, Time: t}
	}
	return events
}
