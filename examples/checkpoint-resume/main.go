// Checkpoint and resume: a Session is snapshotted mid-stream (as a
// periodic checkpoint would), "crashes", and a restored Session finishes
// the stream. The restored run produces bit-identical window estimates
// to an uninterrupted reference run, because the snapshot captures the
// reservoirs, pending windows, watermark and RNG state.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"streamapprox"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "checkpoint-resume:", err)
		os.Exit(1)
	}
}

func run() error {
	events := makeStream()
	cfg := streamapprox.SessionConfig{
		Query:    streamapprox.Sum,
		Fraction: 0.3,
		Seed:     42,
	}

	// Reference: one uninterrupted session.
	ref := streamapprox.NewSession(cfg)
	for _, e := range events {
		if err := ref.Push(e); err != nil {
			return err
		}
	}
	reference := ref.Close()

	// Checkpointed run: process half, snapshot, "crash", restore, finish.
	first := streamapprox.NewSession(cfg)
	half := len(events) / 2
	for _, e := range events[:half] {
		if err := first.Push(e); err != nil {
			return err
		}
	}
	early := first.Poll()
	snapshot, err := first.Snapshot()
	if err != nil {
		return err
	}
	fmt.Printf("checkpoint taken after %d events (%d bytes, %d windows already emitted)\n\n",
		half, len(snapshot), len(early))
	// ...crash; all in-memory state is lost except the snapshot bytes...

	resumed, err := streamapprox.RestoreSession(snapshot)
	if err != nil {
		return err
	}
	for _, e := range events[half:] {
		if err := resumed.Push(e); err != nil {
			return err
		}
	}
	recovered := append(early, resumed.Close()...)

	fmt.Println("window    reference-estimate  resumed-estimate    identical")
	identical := true
	for i := range reference {
		same := reference[i].Overall.Value == recovered[i].Overall.Value
		identical = identical && same
		fmt.Printf("%s  %18.0f  %16.0f    %v\n",
			reference[i].Start.Format("15:04:05"),
			reference[i].Overall.Value, recovered[i].Overall.Value, same)
	}
	if !identical {
		return fmt.Errorf("resumed run diverged from reference")
	}
	fmt.Println("\nresumed run is bit-identical to the uninterrupted run")
	return nil
}

func makeStream() []streamapprox.Event {
	rng := rand.New(rand.NewSource(99))
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	var events []streamapprox.Event
	for ms := 0; ms < 40000; ms += 2 {
		events = append(events, streamapprox.Event{
			Stratum: "src",
			Value:   50 + 10*rng.NormFloat64(),
			Time:    base.Add(time.Duration(ms) * time.Millisecond),
		})
	}
	return events
}
