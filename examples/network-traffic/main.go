// Network traffic analytics (the paper's §6.2 case study): measure the
// total TCP/UDP/ICMP traffic volume per sliding window over a NetFlow
// stream, comparing OASRS against simple random sampling on the rare
// ICMP stratum.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"streamapprox"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "network-traffic:", err)
		os.Exit(1)
	}
}

func run() error {
	flows := makeFlows(300000)
	cfg := streamapprox.Config{
		Query:    streamapprox.GroupBySum,
		Fraction: 0.10, // aggressive sampling to stress the rare stratum
		Seed:     3,
	}

	exact, err := streamapprox.Exact(cfg, flows)
	if err != nil {
		return err
	}

	for _, sampler := range []struct {
		name string
		s    streamapprox.Sampler
	}{
		{"OASRS (StreamApprox)", streamapprox.OASRS},
		{"Simple random (Spark sample)", streamapprox.SimpleRandom},
	} {
		cfg.Sampler = sampler.s
		rep, err := streamapprox.Run(cfg, flows)
		if err != nil {
			return err
		}
		fmt.Printf("--- %s: per-protocol traffic, mean relative error across windows ---\n", sampler.name)
		for _, proto := range []string{"tcp", "udp", "icmp"} {
			var errSum float64
			var n int
			missing := 0
			for i, r := range rep.Results {
				want, ok := exact[i].Groups[proto]
				if !ok || want.Value == 0 {
					continue
				}
				got, ok := r.Groups[proto]
				if !ok {
					missing++
					continue
				}
				errSum += math.Abs(got.Value-want.Value) / want.Value
				n++
			}
			if n > 0 {
				fmt.Printf("  %-5s mean error %6.2f%%  (windows where stratum was lost: %d)\n",
					proto, 100*errSum/float64(n), missing)
			}
		}
		fmt.Printf("  throughput: %.0f items/s, latency: %v\n\n",
			rep.Throughput, rep.Elapsed.Round(time.Millisecond))
	}
	return nil
}

// makeFlows synthesizes NetFlow-like records: TCP dominates, ICMP is a
// rare stratum with small flows — matching the CAIDA-derived mix the
// paper uses.
func makeFlows(n int) []streamapprox.Event {
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	events := make([]streamapprox.Event, n)
	for i := range events {
		t := base.Add(time.Duration(i) * 100 * time.Microsecond)
		u := rng.Float64()
		switch {
		case u < 0.623: // TCP: heavy-tailed flow sizes
			events[i] = streamapprox.Event{
				Stratum: "tcp", Value: math.Exp(8.3 + 1.8*rng.NormFloat64()), Time: t,
			}
		case u < 0.985: // UDP: smaller flows
			events[i] = streamapprox.Event{
				Stratum: "udp", Value: math.Exp(5.7 + 1.1*rng.NormFloat64()), Time: t,
			}
		default: // ICMP: rare, small, regular
			events[i] = streamapprox.Event{
				Stratum: "icmp", Value: math.Exp(4.43 + 0.3*rng.NormFloat64()), Time: t,
			}
		}
	}
	return events
}
