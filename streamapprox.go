// Package streamapprox is a stream-analytics library for approximate
// computing, reproducing the system of "StreamApprox: Approximate
// Computing for Stream Analytics" (Quoc et al., Middleware 2017).
//
// StreamApprox executes sliding-window linear queries (sum, count, mean,
// per-stratum group-bys, histograms) over unbounded data streams by
// sampling each window with Online Adaptive Stratified Reservoir
// Sampling (OASRS) and returning every result with a rigorous error
// bound ("output ± error"). The sample size — and thus the
// throughput/accuracy trade-off — is set by a query budget: a fixed
// sampling fraction, a target accuracy, a latency target, or a resource
// allowance.
//
// Two entry points are provided:
//
//   - Run: one-shot execution of a query over a materialized event
//     stream on a choice of engine (batched/micro-batch à la Spark
//     Streaming, or pipelined à la Flink), including the paper's
//     baseline samplers for comparison.
//   - Session: incremental push-based processing with the adaptive
//     feedback mechanism that re-tunes the sampling fraction when error
//     bounds exceed the target.
package streamapprox

import (
	"time"

	"streamapprox/internal/estimate"
	"streamapprox/internal/query"
	"streamapprox/internal/stream"
)

// Event is one data item: Stratum identifies its sub-stream (data
// source), Value is the numeric payload, Time is its event time.
type Event struct {
	Stratum string
	Value   float64
	Time    time.Time
}

func toInternal(events []Event) []stream.Event {
	out := make([]stream.Event, len(events))
	for i, e := range events {
		out[i] = stream.Event(e)
	}
	return out
}

// Engine selects the stream-processing model (§2.2 of the paper).
type Engine int

// Supported engines.
const (
	// Batched cuts the stream into micro-batches processed as
	// data-parallel jobs (the Apache Spark Streaming model).
	Batched Engine = iota + 1
	// Pipelined forwards each item through the operator chain as soon as
	// it is ready (the Apache Flink model).
	Pipelined
)

// Sampler selects the sampling strategy for Run.
type Sampler int

// Supported samplers.
const (
	// OASRS is the paper's contribution: online adaptive stratified
	// reservoir sampling, applied before batch formation.
	OASRS Sampler = iota + 1
	// SimpleRandom is the Spark `sample` baseline: uniform random-sort
	// sampling of each formed batch, blind to strata.
	SimpleRandom
	// Stratified is the Spark `sampleByKeyExact` baseline: a
	// groupByKey shuffle followed by per-stratum random-sort sampling.
	Stratified
	// None disables sampling (native execution).
	None
)

// Confidence is the error-bound confidence level per the 68-95-99.7
// rule.
type Confidence int

// Supported confidence levels.
const (
	Confidence68  Confidence = Confidence(estimate.Conf68)
	Confidence95  Confidence = Confidence(estimate.Conf95)
	Confidence997 Confidence = Confidence(estimate.Conf997)
)

func (c Confidence) internal() estimate.Confidence {
	switch c {
	case Confidence68, Confidence95, Confidence997:
		return estimate.Confidence(c)
	default:
		return estimate.Conf95
	}
}

// Estimate is an approximate value with its error bound: the true value
// lies within Value ± Bound with probability Confidence.
type Estimate struct {
	Value      float64
	Bound      float64
	Confidence Confidence
}

func fromInternalEstimate(e estimate.Estimate) Estimate {
	return Estimate{Value: e.Value, Bound: e.Bound, Confidence: Confidence(e.Confidence)}
}

// Interval returns [lo, hi] of the confidence interval.
func (e Estimate) Interval() (lo, hi float64) { return e.Value - e.Bound, e.Value + e.Bound }

// RelativeError returns Bound/|Value| (0 when Value is 0).
func (e Estimate) RelativeError() float64 {
	if e.Value == 0 {
		return 0
	}
	v := e.Value
	if v < 0 {
		v = -v
	}
	return e.Bound / v
}

// Query selects the per-window aggregate.
type Query int

// Supported queries.
const (
	// Sum estimates the sum of all item values in the window.
	Sum Query = iota + 1
	// Count estimates the number of items in the window.
	Count
	// Mean estimates the mean item value in the window.
	Mean
	// GroupBySum estimates the per-stratum sum (e.g. bytes per
	// protocol).
	GroupBySum
	// GroupByMean estimates the per-stratum mean (e.g. average trip
	// distance per borough).
	GroupByMean
	// GroupByCount estimates the per-stratum item count.
	GroupByCount
	// Histogram estimates per-bucket item counts over the value range;
	// bucket edges come from Config.HistogramEdges /
	// SessionConfig.HistogramEdges.
	Histogram
)

func (q Query) internal(conf estimate.Confidence, histogramEdges []float64) query.Query {
	switch q {
	case Count:
		return query.NewCount(conf)
	case Mean:
		return query.NewMean(conf)
	case GroupBySum:
		return query.NewGroupBySum(conf)
	case GroupByMean:
		return query.NewGroupByMean(conf)
	case GroupByCount:
		return query.NewGroupByCount(conf)
	case Histogram:
		return query.NewHistogram(histogramEdges, conf)
	default:
		return query.NewSum(conf)
	}
}

// HistogramBucket is one bucket of a histogram result: the estimated
// number of items with values in [Lo, Hi).
type HistogramBucket struct {
	Lo, Hi float64
	Count  Estimate
}

// WindowResult is one window's approximate output.
type WindowResult struct {
	// Start and End delimit the window [Start, End).
	Start, End time.Time
	// Overall is the window-wide estimate.
	Overall Estimate
	// Groups holds per-stratum estimates for group-by queries.
	Groups map[string]Estimate
	// GroupItems holds the number of items observed per stratum for
	// group-by queries — the population weights needed to merge group
	// means across disjoint shards.
	GroupItems map[string]int64
	// Buckets holds per-bucket counts for histogram queries.
	Buckets []HistogramBucket
	// Items is the number of items observed in the window.
	Items int64
	// Sampled is the number of items the query actually processed.
	Sampled int
}

// Stratify selects how events are assigned to strata when the stream is
// not already stratified by source (paper §7.II).
type Stratify int

// Supported stratification modes.
const (
	// StratifyBySource trusts Event.Stratum (the default; §2.3's
	// assumption that the stream is stratified by its sources).
	StratifyBySource Stratify = iota
	// StratifyQuantile bins events by value quantiles estimated from a
	// bootstrap reservoir sample.
	StratifyQuantile
	// StratifyKMeans clusters event values online; pre-labeled events
	// ("c00".."cNN") pin their clusters (semi-supervised).
	StratifyKMeans
)
