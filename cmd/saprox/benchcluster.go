package main

// saprox bench-cluster: the multi-broker benchmark runner. It stands up
// an in-process single-broker "cluster" and a 3-broker cluster with
// replication factor 2, pushes the same workload through the routing
// client against both, then kills a partition leader mid-run and times
// how long produce to that partition stays unavailable. Results land in
// a JSON file (BENCH_cluster.json at the repo root is the tracked
// baseline), so replication-cost and failover-time regressions are
// diffable across PRs.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/broker/storage"
	"streamapprox/internal/obs"
)

type benchClusterMembers struct {
	brokers []*broker.Broker
	servers []*broker.Server
	nodes   []*broker.ClusterNode
	addrs   []string
	ids     []string
	dirs    []string
}

// startBenchCluster boots an in-process cluster; with durable set each
// member keeps its partition logs in a temp directory (fsync interval,
// the realistic durable serving configuration).
func startBenchCluster(members, replicas, minISR int, durable bool) (*benchClusterMembers, error) {
	bc := &benchClusterMembers{}
	peers := make(map[string]string, members)
	for i := 0; i < members; i++ {
		var cfg broker.StorageConfig
		if durable {
			dir, err := os.MkdirTemp("", "benchcluster")
			if err != nil {
				bc.stop()
				return nil, err
			}
			bc.dirs = append(bc.dirs, dir)
			cfg = broker.StorageConfig{Dir: dir, Policy: storage.SyncInterval}
		}
		b, err := broker.Open(cfg)
		if err != nil {
			bc.stop()
			return nil, err
		}
		srv, err := broker.Serve(b, "127.0.0.1:0")
		if err != nil {
			bc.stop()
			return nil, err
		}
		id := fmt.Sprintf("n%d", i)
		peers[id] = srv.Addr()
		bc.brokers = append(bc.brokers, b)
		bc.servers = append(bc.servers, srv)
		bc.ids = append(bc.ids, id)
		bc.addrs = append(bc.addrs, srv.Addr())
	}
	for i := 0; i < members; i++ {
		node, err := broker.NewClusterNode(bc.brokers[i], broker.NodeConfig{
			ID:             bc.ids[i],
			Peers:          peers,
			Replicas:       replicas,
			MinISR:         minISR,
			HeartbeatEvery: 20 * time.Millisecond,
			FailAfter:      3,
		})
		if err != nil {
			bc.stop()
			return nil, err
		}
		bc.servers[i].AttachNode(node)
		bc.nodes = append(bc.nodes, node)
	}
	for _, n := range bc.nodes {
		n.Start()
	}
	return bc, nil
}

func (bc *benchClusterMembers) kill(i int) {
	if bc.nodes[i] == nil {
		return
	}
	bc.nodes[i].Close()
	bc.servers[i].Close()
	bc.brokers[i].Close()
	bc.nodes[i] = nil
}

func (bc *benchClusterMembers) stop() {
	for i := range bc.servers {
		if i < len(bc.nodes) && bc.nodes[i] != nil {
			bc.nodes[i].Close()
			bc.nodes[i] = nil
		}
		bc.servers[i].Close()
		bc.brokers[i].Close()
	}
	for _, dir := range bc.dirs {
		_ = os.RemoveAll(dir)
	}
	bc.dirs = nil
}

func (bc *benchClusterMembers) indexOf(id string) int {
	for i, nid := range bc.ids {
		if nid == id {
			return i
		}
	}
	return -1
}

// benchClusterSide holds one cluster size's measurements.
type benchClusterSide struct {
	Members            int     `json:"members"`
	Replicas           int     `json:"replicas"`
	MinISR             int     `json:"min_isr"`
	ProduceItemsPerSec float64 `json:"produce_items_per_s"`
	FetchItemsPerSec   float64 `json:"fetch_items_per_s"`
	ProduceSeconds     float64 `json:"produce_seconds"`
	FetchSeconds       float64 `json:"fetch_seconds"`
}

type benchClusterResult struct {
	Bench     string           `json:"bench"`
	Go        string           `json:"go"`
	CPUs      int              `json:"cpus"`
	UnixNanos int64            `json:"unix_nanos"`
	Records   int              `json:"records"`
	Batch     int              `json:"batch"`
	Parts     int              `json:"partitions"`
	Reps      int              `json:"reps"`
	Durable   bool             `json:"durable"`
	Single    benchClusterSide `json:"single_broker"`
	Cluster3  benchClusterSide `json:"three_brokers_rf2"`
	// ReplicationCost is single-broker produce rate over 3-broker rate:
	// the price of synchronous RF2 replication on the produce path.
	ReplicationCost float64 `json:"replication_cost_produce"`
	// FailoverRecoverySeconds is how long produce to a partition stayed
	// unavailable after its leader was killed (detection + promotion +
	// client redirect).
	FailoverRecoverySeconds float64 `json:"failover_recovery_seconds"`
}

// benchRecs builds one batch of keyless records.
func benchRecs(v0, n int) []broker.Record {
	out := make([]broker.Record, n)
	base := time.Unix(0, 0).UTC()
	for i := range out {
		out[i] = broker.Record{Value: float64(v0 + i), Time: base.Add(time.Duration(v0+i) * time.Millisecond)}
	}
	return out
}

// benchSide is one live cluster under measurement: the members, a
// routing client, and the side's result being filled in.
type benchSide struct {
	bc   *benchClusterMembers
	cc   *broker.ClusterClient
	side benchClusterSide
}

func (s *benchSide) stop() {
	if s.cc != nil {
		_ = s.cc.Close()
	}
	if s.bc != nil {
		s.bc.stop()
	}
}

// startBenchSide boots one cluster, dials it, and warms up both paths
// on a throwaway topic: first-touch costs (peer replication
// connections, per-partition leader state, allocator and scheduler
// steady state) are one-time, and on short runs they would otherwise
// dominate a measurement window of a few tens of milliseconds.
func startBenchSide(members, replicas, minISR, batch, parts int, durable bool) (*benchSide, error) {
	s := &benchSide{side: benchClusterSide{Members: members, Replicas: replicas, MinISR: minISR}}
	var err error
	if s.bc, err = startBenchCluster(members, replicas, minISR, durable); err != nil {
		return nil, err
	}
	if s.cc, err = broker.DialCluster(s.bc.addrs); err != nil {
		s.stop()
		return nil, err
	}
	if err := s.cc.CreateTopic("benchwarm", parts); err != nil {
		s.stop()
		return nil, err
	}
	for off := 0; off < 4*batch; off += batch {
		if _, err := s.cc.Produce("benchwarm", benchRecs(off, batch)); err != nil {
			s.stop()
			return nil, fmt.Errorf("warmup produce: %w", err)
		}
	}
	for p := 0; p < parts; p++ {
		if _, err := s.cc.Fetch("benchwarm", p, 0, 4096); err != nil {
			s.stop()
			return nil, fmt.Errorf("warmup fetch: %w", err)
		}
	}
	return s, nil
}

// timedProduce pushes `records` in `batch`-sized requests to a fresh
// topic and returns the elapsed seconds.
func (s *benchSide) timedProduce(topic string, records, batch, parts int) (float64, error) {
	if err := s.cc.CreateTopic(topic, parts); err != nil {
		return 0, err
	}
	start := time.Now()
	for off := 0; off < records; off += batch {
		n := batch
		if off+n > records {
			n = records - off
		}
		if _, err := s.cc.Produce(topic, benchRecs(off, n)); err != nil {
			return 0, fmt.Errorf("produce: %w", err)
		}
	}
	return time.Since(start).Seconds(), nil
}

// timedFetch reads every record of the topic back through the routing
// client and returns the elapsed seconds, verifying the count.
func (s *benchSide) timedFetch(topic string, records, parts int) (float64, error) {
	start := time.Now()
	fetched := 0
	for p := 0; p < parts; p++ {
		hwm, err := s.cc.HighWatermark(topic, p)
		if err != nil {
			return 0, err
		}
		for off := int64(0); off < hwm; {
			recs, err := s.cc.Fetch(topic, p, off, 4096)
			if err != nil {
				return 0, err
			}
			if len(recs) == 0 {
				return 0, fmt.Errorf("empty fetch below hwm at %d/%d", p, off)
			}
			fetched += len(recs)
			off += int64(len(recs))
		}
	}
	if fetched != records {
		return 0, fmt.Errorf("fetched %d of %d records", fetched, records)
	}
	return time.Since(start).Seconds(), nil
}

// measureClusterSides measures the single-broker and 3-broker sides as
// a PAIRED experiment: both clusters are alive at once, and each
// repetition times one produce pass on each side back to back before
// the next repetition, keeping the fastest pass per side. CPU-supply
// drift on a shared host (steal windows, noisy neighbors) then lands
// on both sides of the replication-cost ratio instead of on whichever
// side happened to run during the bad seconds.
func measureClusterSides(records, batch, parts, reps int, durable bool) (single, rf2 benchClusterSide, err error) {
	a, err := startBenchSide(1, 1, 1, batch, parts, durable)
	if err != nil {
		return single, rf2, err
	}
	defer a.stop()
	b, err := startBenchSide(3, 2, 2, batch, parts, durable)
	if err != nil {
		return single, rf2, err
	}
	defer b.stop()

	sides := [2]*benchSide{a, b}
	for rep := 0; rep < reps; rep++ {
		topic := fmt.Sprintf("bench%d", rep)
		for _, s := range sides {
			sec, err := s.timedProduce(topic, records, batch, parts)
			if err != nil {
				return single, rf2, err
			}
			if s.side.ProduceSeconds == 0 || sec < s.side.ProduceSeconds {
				s.side.ProduceSeconds = sec
			}
		}
	}
	for rep := 0; rep < reps; rep++ {
		for _, s := range sides {
			sec, err := s.timedFetch("bench0", records, parts)
			if err != nil {
				return single, rf2, err
			}
			if s.side.FetchSeconds == 0 || sec < s.side.FetchSeconds {
				s.side.FetchSeconds = sec
			}
		}
	}
	for _, s := range sides {
		s.side.ProduceItemsPerSec = float64(records) / s.side.ProduceSeconds
		s.side.FetchItemsPerSec = float64(records) / s.side.FetchSeconds
	}
	return a.side, b.side, nil
}

// measureFailoverRecovery kills the leader of partition 0 on a fresh
// 3-broker cluster and times until a produce to that partition succeeds
// again.
func measureFailoverRecovery(batch, parts int, durable bool) (float64, error) {
	bc, err := startBenchCluster(3, 2, 2, durable)
	if err != nil {
		return 0, err
	}
	defer bc.stop()
	cc, err := broker.DialClusterWithOptions(bc.addrs, broker.ClusterClientOptions{
		Retries: 40, Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	defer func() { _ = cc.Close() }()
	if err := cc.CreateTopic("bench", parts); err != nil {
		return 0, err
	}
	if _, err := cc.Produce("bench", benchRecs(0, batch)); err != nil {
		return 0, err
	}
	m, err := cc.Meta()
	if err != nil {
		return 0, err
	}
	leader := m.LeaderOf("bench", 0)
	if leader == "" {
		return 0, fmt.Errorf("no leader for partition 0")
	}
	bc.kill(bc.indexOf(leader))
	start := time.Now()
	// The routing client retries internally until a follower is
	// promoted; the elapsed time IS the unavailability window.
	if _, err := cc.Produce("bench", benchRecs(batch, batch)); err != nil {
		return 0, fmt.Errorf("produce never recovered: %w", err)
	}
	return time.Since(start).Seconds(), nil
}

func runBenchCluster(args []string) error {
	fs := flag.NewFlagSet("bench-cluster", flag.ContinueOnError)
	records := fs.Int("records", 100000, "records per measurement")
	batch := fs.Int("batch", 1000, "records per produce request")
	parts := fs.Int("partitions", 4, "topic partitions")
	reps := fs.Int("reps", 3, "measurement repetitions per side (fastest pass wins)")
	durable := fs.Bool("durable", false, "use durable on-disk partition logs (temp dirs, fsync interval)")
	out := fs.String("out", "BENCH_cluster.json", `result file ("-" for stdout only)`)
	baseline := fs.String("baseline", "", "compare produce throughput and replication-cost ratio against this recorded result file and fail on regression")
	maxRegress := fs.Float64("max-regress", 0.10, "allowed fractional regression vs -baseline before failing")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the measurements to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *records < *batch || *batch < 1 || *parts < 1 || *reps < 1 {
		return fmt.Errorf("bench-cluster: need records >= batch >= 1, partitions >= 1, reps >= 1")
	}

	res := benchClusterResult{
		Bench:     "cluster",
		Go:        runtime.Version(),
		CPUs:      runtime.NumCPU(),
		UnixNanos: time.Now().UnixNano(),
		Records:   *records,
		Batch:     *batch,
		Parts:     *parts,
		Reps:      *reps,
		Durable:   *durable,
	}

	mode := "in-memory"
	if *durable {
		mode = "durable"
	}
	// Structured progress on stderr, grep-able by run ID across the
	// whole benchmark (stdout stays clean JSON).
	blog := obs.New(os.Stderr, obs.LevelInfo).With("bench", "cluster", "run", obs.TraceHex(obs.NewTraceID()))
	blog.Info("paired sides", "mode", mode, "records", *records, "reps", *reps)
	var err error
	if res.Single, res.Cluster3, err = measureClusterSides(*records, *batch, *parts, *reps, *durable); err != nil {
		return err
	}
	if res.Cluster3.ProduceItemsPerSec > 0 {
		res.ReplicationCost = res.Single.ProduceItemsPerSec / res.Cluster3.ProduceItemsPerSec
	}
	blog.Info("failover recovery")
	if res.FailoverRecoverySeconds, err = measureFailoverRecovery(*batch, *parts, *durable); err != nil {
		return err
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	if *out != "-" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		blog.Info("wrote result", "file", *out)
	}
	if *baseline != "" {
		return checkClusterRegression(*baseline, *maxRegress, res)
	}
	return nil
}

// checkClusterRegression compares the paired measurement against a
// recorded baseline file and errors when single-broker or RF2 produce
// throughput fell more than maxRegress below it, or when the
// replication-cost ratio grew more than maxRegress above it — the CI
// gate that keeps replication-path regressions from landing silently.
// Gains never fail; rerecord the baseline to ratchet them in.
func checkClusterRegression(path string, maxRegress float64, res benchClusterResult) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-cluster baseline: %w", err)
	}
	var base benchClusterResult
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("bench-cluster baseline %s: %w", path, err)
	}
	checkRate := func(what string, got, want float64) error {
		if want <= 0 {
			return nil
		}
		drop := 1 - got/want
		fmt.Printf("  vs %s: %s %12.0f items/s (baseline %12.0f, %+.1f%%)\n",
			path, what, got, want, -drop*100)
		if drop > maxRegress {
			return fmt.Errorf("bench-cluster: %s regressed %.1f%% vs %s (limit %.0f%%)",
				what, drop*100, path, maxRegress*100)
		}
		return nil
	}
	if err := checkRate("single produce", res.Single.ProduceItemsPerSec, base.Single.ProduceItemsPerSec); err != nil {
		return err
	}
	if err := checkRate("rf2 produce", res.Cluster3.ProduceItemsPerSec, base.Cluster3.ProduceItemsPerSec); err != nil {
		return err
	}
	// The ratio regresses UPWARD: replication getting relatively more
	// expensive than the recorded baseline fails even when raw
	// throughput is fine (e.g. on a beefier CI host).
	if base.ReplicationCost > 0 {
		grow := res.ReplicationCost/base.ReplicationCost - 1
		fmt.Printf("  vs %s: replication cost %.4fx (baseline %.4fx, %+.1f%%)\n",
			path, res.ReplicationCost, base.ReplicationCost, grow*100)
		if grow > maxRegress {
			return fmt.Errorf("bench-cluster: replication-cost ratio regressed %.1f%% vs %s (limit %.0f%%)",
				grow*100, path, maxRegress*100)
		}
	}
	return nil
}
