package main

import (
	"strings"
	"testing"
)

func TestRunRejectsUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run(nil); err == nil {
		t.Error("missing command accepted")
	}
}

func TestRunHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	err := run([]string{"run", "fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Errorf("unknown figure: %v", err)
	}
}

func TestRunNoIDs(t *testing.T) {
	if err := run([]string{"run", "-scale", "0.1"}); err == nil {
		t.Error("run with no ids accepted")
	}
}

func TestRunOneFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if err := run([]string{"run", "abl-weights", "-scale", "0.05"}); err != nil {
		t.Errorf("run abl-weights: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if err := run([]string{"run", "abl-weights", "-scale", "0.05", "-csv"}); err != nil {
		t.Errorf("run -csv: %v", err)
	}
}
