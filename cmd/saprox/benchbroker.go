package main

// saprox bench-broker: the broker data-plane benchmark runner. It
// stands up an in-process TCP broker, pushes the same workload through
// the legacy JSON lockstep client and the pipelined binary client in
// one run, and records items/s plus the binary-over-JSON speedups in a
// JSON file (BENCH_broker.json at the repo root is the tracked
// baseline). Unlike `go test -bench` this produces a stable,
// machine-readable artifact future perf PRs diff against.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"streamapprox/internal/broker"
)

// benchCodecResult holds one codec's measurements.
type benchCodecResult struct {
	ProduceItemsPerSec float64 `json:"produce_items_per_s"`
	FetchItemsPerSec   float64 `json:"fetch_items_per_s"`
	ProduceSeconds     float64 `json:"produce_seconds"`
	FetchSeconds       float64 `json:"fetch_seconds"`
}

type benchBrokerResult struct {
	Bench          string           `json:"bench"`
	Go             string           `json:"go"`
	CPUs           int              `json:"cpus"`
	UnixNanos      int64            `json:"unix_nanos"`
	Records        int              `json:"records"`
	Batch          int              `json:"batch"`
	FetchBatch     int              `json:"fetch_batch"`
	Fetchers       int              `json:"fetchers"`
	JSON           benchCodecResult `json:"json"`
	Binary         benchCodecResult `json:"binary"`
	SpeedupProduce float64          `json:"speedup_produce"`
	SpeedupFetch   float64          `json:"speedup_fetch"`
}

const benchFetchBatch = 4096

func runBenchBroker(args []string) error {
	fs := flag.NewFlagSet("bench-broker", flag.ContinueOnError)
	records := fs.Int("records", 200000, "records per measurement")
	batch := fs.Int("batch", 1000, "records per produce request")
	fetchers := fs.Int("fetchers", 4, "concurrent fetchers on the shared connection")
	out := fs.String("out", "BENCH_broker.json", `result file ("-" for stdout only)`)
	baseline := fs.String("baseline", "", "compare binary produce/fetch items/s against this recorded result file and fail on regression")
	maxRegress := fs.Float64("max-regress", 0.10, "allowed fractional drop vs -baseline before failing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *records < *batch || *batch < 1 || *fetchers < 1 {
		return fmt.Errorf("bench-broker: need records >= batch >= 1 and fetchers >= 1")
	}

	res := benchBrokerResult{
		Bench:      "broker-wire",
		Go:         runtime.Version(),
		CPUs:       runtime.NumCPU(),
		UnixNanos:  time.Now().UnixNano(),
		Records:    *records,
		Batch:      *batch,
		FetchBatch: benchFetchBatch,
		Fetchers:   *fetchers,
	}
	var err error
	// JSON first, binary second, same process and machine state: the
	// speedup ratios are only meaningful measured in the same run.
	if res.JSON, err = benchOneCodec("json", *records, *batch, *fetchers); err != nil {
		return fmt.Errorf("bench-broker json: %w", err)
	}
	if res.Binary, err = benchOneCodec("binary", *records, *batch, *fetchers); err != nil {
		return fmt.Errorf("bench-broker binary: %w", err)
	}
	res.SpeedupProduce = res.Binary.ProduceItemsPerSec / res.JSON.ProduceItemsPerSec
	res.SpeedupFetch = res.Binary.FetchItemsPerSec / res.JSON.FetchItemsPerSec

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	fmt.Printf("broker wire bench (%d records, batch %d, %d fetchers)\n",
		*records, *batch, *fetchers)
	fmt.Printf("  produce  json %12.0f items/s   binary %12.0f items/s   %5.1fx\n",
		res.JSON.ProduceItemsPerSec, res.Binary.ProduceItemsPerSec, res.SpeedupProduce)
	fmt.Printf("  fetch    json %12.0f items/s   binary %12.0f items/s   %5.1fx\n",
		res.JSON.FetchItemsPerSec, res.Binary.FetchItemsPerSec, res.SpeedupFetch)
	if *out == "-" {
		if _, err = os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("  recorded in %s\n", *out)
	}
	if *baseline != "" {
		return checkBenchRegression(*baseline, *maxRegress, res)
	}
	return nil
}

// checkBenchRegression compares the binary codec's measured throughput
// against a recorded baseline file and errors when either produce or
// fetch items/s fell more than maxRegress below it — the CI smoke gate
// that keeps hot-path regressions from landing silently. Gains are
// never an error; rerecord the baseline to ratchet them in.
func checkBenchRegression(path string, maxRegress float64, res benchBrokerResult) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-broker baseline: %w", err)
	}
	var base benchBrokerResult
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("bench-broker baseline %s: %w", path, err)
	}
	check := func(what string, got, want float64) error {
		if want <= 0 {
			return nil
		}
		drop := 1 - got/want
		fmt.Printf("  vs %s: binary %s %12.0f items/s (baseline %12.0f, %+.1f%%)\n",
			path, what, got, want, -drop*100)
		if drop > maxRegress {
			return fmt.Errorf("bench-broker: binary %s regressed %.1f%% vs %s (limit %.0f%%)",
				what, drop*100, path, maxRegress*100)
		}
		return nil
	}
	if err := check("produce", res.Binary.ProduceItemsPerSec, base.Binary.ProduceItemsPerSec); err != nil {
		return err
	}
	return check("fetch", res.Binary.FetchItemsPerSec, base.Binary.FetchItemsPerSec)
}

// benchOneCodec measures produce then fetch throughput for one codec
// over a fresh broker server.
func benchOneCodec(mode string, records, batch, fetchers int) (benchCodecResult, error) {
	var out benchCodecResult
	bk := broker.New()
	srv, err := broker.Serve(bk, "127.0.0.1:0")
	if err != nil {
		return out, err
	}
	defer srv.Close()
	dial := broker.Dial
	if mode == "json" {
		dial = broker.DialJSON
	}
	cli, err := dial(srv.Addr())
	if err != nil {
		return out, err
	}
	defer cli.Close()
	if err := cli.CreateTopic("bench", 1); err != nil {
		return out, err
	}

	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	recs := make([]broker.Record, batch)
	for i := range recs {
		recs[i] = broker.Record{
			Key:   fmt.Sprintf("stratum-%d", i%16),
			Value: float64(i) * 1.5,
			Time:  base.Add(time.Duration(i) * time.Millisecond),
		}
	}

	// Produce: sequential batches, the shape replay and examples use.
	produced := 0
	start := time.Now()
	for produced < records {
		n, err := cli.Produce("bench", recs)
		if err != nil {
			return out, err
		}
		produced += n
	}
	out.ProduceSeconds = time.Since(start).Seconds()
	out.ProduceItemsPerSec = float64(produced) / out.ProduceSeconds

	// Fetch: concurrent fetchers over disjoint offset ranges sharing
	// the one connection — pipelined clients overlap the round trips,
	// the lockstep client serializes them.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fetched := make([]int64, fetchers)
	per := int64(produced) / int64(fetchers)
	start = time.Now()
	for w := 0; w < fetchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := int64(w) * per
			hi := lo + per
			if w == fetchers-1 {
				hi = int64(produced)
			}
			for off := lo; off < hi; {
				max := benchFetchBatch
				if int64(max) > hi-off {
					max = int(hi - off)
				}
				got, err := cli.Fetch("bench", 0, off, max)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				off += int64(len(got))
				fetched[w] += int64(len(got))
			}
		}(w)
	}
	wg.Wait()
	out.FetchSeconds = time.Since(start).Seconds()
	if firstErr != nil {
		return out, firstErr
	}
	var total int64
	for _, n := range fetched {
		total += n
	}
	if total != int64(produced) {
		return out, fmt.Errorf("fetched %d of %d produced records", total, produced)
	}
	out.FetchItemsPerSec = float64(total) / out.FetchSeconds
	return out, nil
}
