package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"streamapprox/internal/metrics"
)

// saprox status: scrape every broker admin endpoint and (optionally)
// saproxd's /metrics, and render a one-screen cluster view — leaders
// and ISR per partition, per-follower replication lag, per-op wire
// latency quantiles, and each query's observed error against its
// budget. Pure read path: everything shown is reconstructed from the
// Prometheus text expositions, so it works against any live cluster
// with no side channel.

type brokerScrape struct {
	addr string
	node string
	sc   *metrics.Scrape
	err  error
}

func runStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	brokersFlag := fs.String("brokers", "", "comma-separated broker ADMIN addresses (the brokerd -http listeners)")
	saproxdFlag := fs.String("saproxd", "", "saproxd address to scrape for query status (optional)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-scrape HTTP timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *brokersFlag == "" && *saproxdFlag == "" {
		return fmt.Errorf("status: need -brokers and/or -saproxd")
	}
	client := &http.Client{Timeout: *timeout}

	var brokers []*brokerScrape
	for _, a := range strings.Split(*brokersFlag, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		b := &brokerScrape{addr: a}
		b.sc, b.err = scrapeMetrics(client, a)
		if b.err == nil {
			if infos := b.sc.Select("broker_info", nil); len(infos) > 0 {
				b.node = infos[0].Labels["node"]
			}
			if b.node == "" {
				b.node = a
			}
		}
		brokers = append(brokers, b)
	}

	if len(brokers) > 0 {
		renderBrokers(brokers)
		renderPartitions(brokers)
	}
	if *saproxdFlag != "" {
		sc, err := scrapeMetrics(client, *saproxdFlag)
		if err != nil {
			return fmt.Errorf("status: saproxd %s: %w", *saproxdFlag, err)
		}
		renderIngest(*saproxdFlag, sc)
		renderQueries(*saproxdFlag, sc)
	}
	return nil
}

// scrapeMetrics fetches and parses one /metrics endpoint.
func scrapeMetrics(client *http.Client, addr string) (*metrics.Scrape, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return metrics.ParseText(resp.Body)
}

// fmtDur renders a seconds-valued quantile compactly (µs under 1ms).
func fmtDur(sec float64, ok bool) string {
	if !ok {
		return "-"
	}
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// opQuantiles renders "p50/p99" for one wire op's latency histogram.
func opQuantiles(sc *metrics.Scrape, op string) string {
	m := metrics.Labels{"op": op}
	p50, ok50 := sc.Quantile("broker_request_seconds", m, 0.50)
	p99, ok99 := sc.Quantile("broker_request_seconds", m, 0.99)
	if !ok50 && !ok99 {
		return "-"
	}
	return fmtDur(p50, ok50) + "/" + fmtDur(p99, ok99)
}

// replCoalesce renders a leader's replication-coalescing view: mean
// partition sections per batched replicate RPC (summed across its
// follower sessions) and the total producers woken by batched acks, or
// "-" before the node has drained any batch.
func replCoalesce(sc *metrics.Scrape) string {
	var sum, count, woken float64
	for _, s := range sc.Select("broker_replicate_batch_partitions_sum", nil) {
		sum += s.Value
	}
	for _, s := range sc.Select("broker_replicate_batch_partitions_count", nil) {
		count += s.Value
	}
	for _, s := range sc.Select("broker_replicate_group_wakeups_total", nil) {
		woken += s.Value
	}
	if count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fp/batch %.0f woken", sum/count, woken)
}

func renderBrokers(brokers []*brokerScrape) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "BROKER\tEPOCH\tSTATE\tPRODUCE p50/p99\tFETCH p50/p99\tFSYNC p50/p99\tREPL COALESCE")
	for _, b := range brokers {
		if b.err != nil {
			fmt.Fprintf(w, "%s\tunreachable: %v\t\t\t\t\t\n", b.addr, b.err)
			continue
		}
		state := "ok"
		if v, ok := b.sc.Value("broker_joining", nil); ok && v > 0 {
			state = "joining"
		}
		epoch := "-"
		if v, ok := b.sc.Value("broker_cluster_epoch", nil); ok {
			epoch = fmt.Sprintf("%.0f", v)
		}
		p50f, ok50 := b.sc.Quantile("broker_fsync_seconds", nil, 0.50)
		p99f, ok99 := b.sc.Quantile("broker_fsync_seconds", nil, 0.99)
		fsync := "-"
		if ok50 || ok99 {
			fsync = fmtDur(p50f, ok50) + "/" + fmtDur(p99f, ok99)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			b.node, epoch, state,
			opQuantiles(b.sc, "produce"), opQuantiles(b.sc, "fetch"), fsync,
			replCoalesce(b.sc))
	}
	w.Flush()
	fmt.Println()
}

func renderPartitions(brokers []*brokerScrape) {
	type partRow struct {
		topic, part string
		leader      string
		isr         float64
		logEnd      float64
		committed   float64
		lag         []string // follower=records, from the leader's scrape
	}
	rows := make(map[string]*partRow)
	key := func(t, p string) string { return t + "/" + p }
	for _, b := range brokers {
		if b.err != nil {
			continue
		}
		for _, s := range b.sc.Select("broker_partition_leader", nil) {
			t, p := s.Labels["topic"], s.Labels["partition"]
			r, ok := rows[key(t, p)]
			if !ok {
				r = &partRow{topic: t, part: p}
				rows[key(t, p)] = r
			}
			if s.Value < 1 {
				continue
			}
			// This node leads the partition: its view of ISR, offsets and
			// follower lag is authoritative.
			r.leader = b.node
			r.isr, _ = b.sc.Value("broker_partition_isr_size", s.Labels)
			r.committed, _ = b.sc.Value("broker_partition_committed_offset", s.Labels)
			r.logEnd, _ = b.sc.Value("broker_partition_log_end_offset", s.Labels)
			r.lag = r.lag[:0]
			for _, ls := range b.sc.Select("broker_replication_lag_records",
				metrics.Labels{"topic": t, "partition": p}) {
				r.lag = append(r.lag, fmt.Sprintf("%s=%.0f", ls.Labels["follower"], ls.Value))
			}
			sort.Strings(r.lag)
		}
	}
	if len(rows) == 0 {
		return
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PARTITION\tLEADER\tISR\tLOG-END\tCOMMITTED\tFOLLOWER LAG")
	for _, k := range keys {
		r := rows[k]
		leader := r.leader
		if leader == "" {
			leader = "NONE"
		}
		lag := strings.Join(r.lag, " ")
		if lag == "" {
			lag = "-"
		}
		fmt.Fprintf(w, "%s/%s\t%s\t%.0f\t%.0f\t%.0f\t%s\n",
			r.topic, r.part, leader, r.isr, r.logEnd, r.committed, lag)
	}
	w.Flush()
	fmt.Println()
}

// renderIngest shows the shared plane's per-partition batch shape: how
// many records each columnar fetch round carried (the vectorization's
// leverage — bigger batches amortize more per-record work) and how long
// the partition loop blocked per fetch+decode round.
func renderIngest(addr string, sc *metrics.Scrape) {
	parts := make(map[string]bool)
	for _, s := range sc.Select("saproxd_ingest_records_total", nil) {
		if s.Labels["partition"] != "" {
			parts[s.Labels["partition"]] = true
		}
	}
	if len(parts) == 0 {
		return
	}
	keys := make([]string, 0, len(parts))
	for p := range parts {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	fmt.Printf("INGEST PLANE (%s)\n", addr)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PARTITION\tRECORDS\tITEMS/S\tLAG\tBATCH avg/p99\tDECODE p50/p99")
	for _, p := range keys {
		m := metrics.Labels{"partition": p}
		records, _ := sc.Value("saproxd_ingest_records_total", m)
		rate := "-"
		if v, ok := sc.Value("saproxd_ingest_throughput_items_per_s", m); ok {
			rate = fmt.Sprintf("%.0f", v)
		}
		lag := "-"
		if v, ok := sc.Value("saproxd_ingest_lag_records", m); ok {
			lag = fmt.Sprintf("%.0f", v)
		}
		batch := "-"
		if sum, ok := sc.Value("saproxd_ingest_batch_records_sum", m); ok {
			if count, ok2 := sc.Value("saproxd_ingest_batch_records_count", m); ok2 && count > 0 {
				p99, ok99 := sc.Quantile("saproxd_ingest_batch_records", m, 0.99)
				batch = fmt.Sprintf("%.0f", sum/count)
				if ok99 {
					batch += fmt.Sprintf("/%.0f", p99)
				}
			}
		}
		decode := "-"
		p50d, ok50 := sc.Quantile("saproxd_ingest_decode_seconds", m, 0.50)
		p99d, ok99 := sc.Quantile("saproxd_ingest_decode_seconds", m, 0.99)
		if ok50 || ok99 {
			decode = fmtDur(p50d, ok50) + "/" + fmtDur(p99d, ok99)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%s\t%s\t%s\t%s\n", p, records, rate, lag, batch, decode)
	}
	w.Flush()
	fmt.Println()
}

func renderQueries(addr string, sc *metrics.Scrape) {
	queries := make(map[string]bool)
	for _, s := range sc.Select("saproxd_query_observed_rel_error", nil) {
		queries[s.Labels["query"]] = true
	}
	for _, s := range sc.Select("saproxd_windows_merged_total", nil) {
		queries[s.Labels["query"]] = true
	}
	ids := make([]string, 0, len(queries))
	for id := range queries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Printf("QUERIES (%s)\n", addr)
	if len(ids) == 0 {
		fmt.Println("  none registered")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "QUERY\tWINDOWS\tERR OBSERVED\tERR TARGET\tLAG\tMERGE p50/p99")
	for _, id := range ids {
		m := metrics.Labels{"query": id}
		windows, _ := sc.Value("saproxd_windows_merged_total", m)
		obs := "-"
		if v, ok := sc.Value("saproxd_query_observed_rel_error", m); ok {
			obs = fmt.Sprintf("%.2f%%", v*100)
		}
		target := "-"
		if v, ok := sc.Value("saproxd_query_target_rel_error", m); ok {
			target = fmt.Sprintf("%.2f%%", v*100)
		}
		lag := "-"
		if v, ok := sc.Value("saproxd_query_lag_records", m); ok {
			lag = fmt.Sprintf("%.0f", v)
		}
		p50, ok50 := sc.Quantile("saproxd_window_merge_seconds", m, 0.50)
		p99, ok99 := sc.Quantile("saproxd_window_merge_seconds", m, 0.99)
		merge := "-"
		if ok50 || ok99 {
			merge = fmtDur(p50, ok50) + "/" + fmtDur(p99, ok99)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%s\t%s\t%s\t%s\n", id, windows, obs, target, lag, merge)
	}
	w.Flush()
}
