package main

// saprox bench-server: the serving-tier concurrency benchmark runner.
// It stands up an in-process broker behind a fetch-counting wrapper,
// runs the same produced workload through saproxd's two execution
// models — the shared ingest plane (one consumer per partition for all
// queries) and the per-query baseline (one consumer set per query) —
// at growing query counts, and records items/s plus broker fetch
// operations in a JSON file (BENCH_server.json at the repo root is the
// tracked baseline). The headline number is fetch-op scaling: on the
// shared plane, broker work at 32 concurrent queries must stay within
// a small factor of the 1-query case, where the baseline pays ~32x.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/server"
	"streamapprox/internal/stream"
	"streamapprox/internal/xrand"
)

// fetchCountingCluster wraps a Cluster and counts broker fetch ops —
// the cost the shared ingest plane amortizes across queries.
type fetchCountingCluster struct {
	broker.Cluster
	fetches atomic.Int64
}

func (c *fetchCountingCluster) Fetch(topic string, partition int, offset int64, max int) ([]broker.Record, error) {
	c.fetches.Add(1)
	return c.Cluster.Fetch(topic, partition, offset, max)
}

// FetchBatch forwards the columnar fetch so the wrapper stays on the
// serving tier's native batch path — without it the consumer would
// silently fall back to the record bridge and the benchmark would stop
// measuring the vectorized pipeline.
func (c *fetchCountingCluster) FetchBatch(topic string, partition int, offset int64, max int, b *stream.EventBatch) (int, error) {
	c.fetches.Add(1)
	return c.Cluster.(broker.BatchFetcher).FetchBatch(topic, partition, offset, max, b)
}

// benchServerCase is one (mode, query count) measurement.
type benchServerCase struct {
	Mode            string  `json:"mode"` // "shared" or "per-query"
	Queries         int     `json:"queries"`
	Seconds         float64 `json:"seconds"`
	FetchOps        int64   `json:"fetch_ops"`
	FetchOpsPerSec  float64 `json:"fetch_ops_per_s"`
	ItemsPerSec     float64 `json:"items_per_s"` // events delivered across all queries / s
	WindowsPerQuery int64   `json:"windows_per_query"`
}

type benchServerResult struct {
	Bench      string            `json:"bench"`
	Go         string            `json:"go"`
	CPUs       int               `json:"cpus"`
	UnixNanos  int64             `json:"unix_nanos"`
	Events     int               `json:"events"`
	Partitions int               `json:"partitions"`
	Cases      []benchServerCase `json:"cases"`
	// FetchScaling is fetch_ops_per_s(max queries)/fetch_ops_per_s(1)
	// per mode: ~1 on the shared plane, ~N on the baseline.
	FetchScalingShared   float64 `json:"fetch_scaling_shared"`
	FetchScalingPerQuery float64 `json:"fetch_scaling_per_query"`
}

func runBenchServer(args []string) error {
	fs := flag.NewFlagSet("bench-server", flag.ContinueOnError)
	events := fs.Int("events", 40000, "events per measurement")
	partitions := fs.Int("partitions", 4, "topic partitions (= shards per query)")
	out := fs.String("out", "BENCH_server.json", `result file ("-" for stdout only)`)
	baseline := fs.String("baseline", "", "baseline result file to gate against (empty: no gate)")
	maxRegress := fs.Float64("max-regress", 0.30, "max fractional items/s regression vs -baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *partitions < 1 {
		return fmt.Errorf("bench-server: need partitions >= 1")
	}
	// Events are ms-spaced and windows close on event-time watermarks
	// only, so the stream must span enough event time for the 3 windows
	// every case waits on (10s window / 5s slide → ~20s). A shorter run
	// would spin against the completion deadline, not measure anything.
	if *events < 20000 {
		return fmt.Errorf("bench-server: need events >= 20000 (%d events is ~%ds of event time; the 3 windows each case waits for need ~20s)", *events, *events/1000)
	}

	res := benchServerResult{
		Bench:      "server-concurrency",
		Go:         runtime.Version(),
		CPUs:       runtime.NumCPU(),
		UnixNanos:  time.Now().UnixNano(),
		Events:     *events,
		Partitions: *partitions,
	}
	queryCounts := []int{1, 8, 32}
	fmt.Printf("server concurrency bench (%d events, %d partitions)\n", *events, *partitions)
	fmt.Printf("  %-10s %8s %10s %12s %14s %12s\n",
		"mode", "queries", "seconds", "fetch_ops", "fetch_ops/s", "items/s")
	perSec := map[string]map[int]float64{"shared": {}, "per-query": {}}
	for _, mode := range []string{"shared", "per-query"} {
		for _, n := range queryCounts {
			c, err := benchServerCaseRun(mode, n, *events, *partitions)
			if err != nil {
				return fmt.Errorf("bench-server %s/%d: %w", mode, n, err)
			}
			res.Cases = append(res.Cases, c)
			perSec[mode][n] = c.FetchOpsPerSec
			fmt.Printf("  %-10s %8d %10.2f %12d %14.0f %12.0f\n",
				c.Mode, c.Queries, c.Seconds, c.FetchOps, c.FetchOpsPerSec, c.ItemsPerSec)
		}
	}
	last := queryCounts[len(queryCounts)-1]
	res.FetchScalingShared = perSec["shared"][last] / perSec["shared"][1]
	res.FetchScalingPerQuery = perSec["per-query"][last] / perSec["per-query"][1]
	fmt.Printf("  fetch ops/s scaling 1 -> %d queries: shared %.2fx, per-query %.2fx\n",
		last, res.FetchScalingShared, res.FetchScalingPerQuery)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err = os.Stdout.Write(blob); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("  recorded in %s\n", *out)
	}
	if *baseline != "" {
		return checkServerRegression(*baseline, *maxRegress, res)
	}
	return nil
}

// checkServerRegression compares the serving tier's measured items/s
// against a recorded baseline file, case by (mode, queries) case, and
// errors when any case fell more than maxRegress below it — the CI gate
// that keeps serving-tier hot-path regressions (a de-vectorized fetch,
// a per-record sampler fallback) from landing silently. Gains are never
// an error; rerecord the baseline to ratchet them in.
func checkServerRegression(path string, maxRegress float64, res benchServerResult) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-server baseline: %w", err)
	}
	var base benchServerResult
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("bench-server baseline %s: %w", path, err)
	}
	baseBy := make(map[string]benchServerCase, len(base.Cases))
	for _, c := range base.Cases {
		baseBy[fmt.Sprintf("%s/%d", c.Mode, c.Queries)] = c
	}
	compared := 0
	for _, c := range res.Cases {
		key := fmt.Sprintf("%s/%d", c.Mode, c.Queries)
		b, ok := baseBy[key]
		if !ok || b.ItemsPerSec <= 0 {
			continue
		}
		compared++
		drop := 1 - c.ItemsPerSec/b.ItemsPerSec
		fmt.Printf("  vs %s: %-12s %12.0f items/s (baseline %12.0f, %+.1f%%)\n",
			path, key, c.ItemsPerSec, b.ItemsPerSec, -drop*100)
		if drop > maxRegress {
			return fmt.Errorf("bench-server: %s regressed %.1f%% vs %s (limit %.0f%%)",
				key, drop*100, path, maxRegress*100)
		}
	}
	if compared == 0 {
		return fmt.Errorf("bench-server: baseline %s shares no cases with this run", path)
	}
	return nil
}

// benchServerCaseRun measures one (mode, query count) case: produce a
// fixed workload, register n identical queries, and wait until every
// query has consumed every event and merged several windows.
func benchServerCaseRun(mode string, n, events, partitions int) (benchServerCase, error) {
	out := benchServerCase{Mode: mode, Queries: n}
	bk := broker.New()
	if err := bk.CreateTopic("bench", partitions); err != nil {
		return out, err
	}
	cc := &fetchCountingCluster{Cluster: bk}
	srv, err := server.New(server.Config{
		Cluster:        cc,
		Topic:          "bench",
		PollBackoff:    200 * time.Microsecond,
		PerQueryIngest: mode == "per-query",
	})
	if err != nil {
		return out, err
	}
	defer srv.Close()

	// Register the standing queries first, then produce: the steady
	// state being measured is N live queries sharing one topic read,
	// not N late registrations racing through catch-up.
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id, err := srv.Register(server.Spec{
			Kind:     "sum",
			Window:   10 * time.Second,
			Slide:    5 * time.Second,
			Fraction: 0.4,
			Seed:     uint64(i + 1),
		})
		if err != nil {
			return out, err
		}
		ids = append(ids, id)
	}
	start := time.Now()
	cc.fetches.Store(0) // exclude registration-time idle polls
	if _, err := broker.ProduceEvents(bk, "bench", benchServerEvents(events)); err != nil {
		return out, err
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		done := true
		for _, id := range ids {
			records, windows, ok := srv.Stats(id)
			if !ok {
				return out, fmt.Errorf("query %s vanished", id)
			}
			if records < int64(events) || windows < 3 {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return out, fmt.Errorf("not all %d queries finished within deadline", n)
		}
		time.Sleep(500 * time.Microsecond)
	}
	out.Seconds = time.Since(start).Seconds()
	out.FetchOps = cc.fetches.Load()
	out.FetchOpsPerSec = float64(out.FetchOps) / out.Seconds
	out.ItemsPerSec = float64(int64(n)*int64(events)) / out.Seconds
	_, out.WindowsPerQuery, _ = srv.Stats(ids[0])
	return out, nil
}

// benchServerEvents builds the deterministic bench workload: ms-spaced
// gaussian values over 16 strata, the shape the server tests use.
func benchServerEvents(n int) []stream.Event {
	rng := xrand.New(7)
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Event, n)
	for i := range out {
		out[i] = stream.Event{
			Stratum: fmt.Sprintf("s%02d", i%16),
			Value:   rng.Gaussian(100, 15),
			Time:    base.Add(time.Duration(i) * time.Millisecond),
		}
	}
	return out
}
