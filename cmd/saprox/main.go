// Command saprox regenerates the figures and tables of the StreamApprox
// paper's evaluation.
//
// Usage:
//
//	saprox list
//	saprox run <figure-id>... [-scale N] [-seed N] [-workers N]
//	saprox run all
//
// Figure ids match DESIGN.md's experiment index (fig4a ... fig10,
// abl-sync, abl-weights, abl-dist, abl-skip).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"streamapprox/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "saprox:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		return list()
	case "run":
		return runFigures(args[1:])
	case "bench-broker":
		return runBenchBroker(args[1:])
	case "bench-server":
		return runBenchServer(args[1:])
	case "bench-cluster":
		return runBenchCluster(args[1:])
	case "bench-e2e":
		return runBenchE2E(args[1:])
	case "status":
		return runStatus(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  saprox list                                  list available figure ids
  saprox run <id>... [flags]                   regenerate figures
  saprox run all [flags]                       regenerate everything
  saprox bench-broker [flags]                  benchmark the broker wire path
                                               (JSON vs binary codec) and record
                                               the result as JSON
  saprox bench-server [flags]                  benchmark serving-tier query
                                               concurrency (shared ingest plane
                                               vs per-query baseline) and record
                                               the result as JSON
  saprox bench-cluster [flags]                 benchmark 1 vs 3 replicated
                                               brokers through the routing
                                               client, plus failover recovery
                                               time, and record the result
  saprox bench-e2e [flags]                     chaos benchmark: replay a workload
                                               through a proxy-fronted 3-broker
                                               cluster and a live query while
                                               injecting leader kill/blackhole,
                                               follower stall and slow disk;
                                               record throughput, p99, recovery
                                               time and observed error per
                                               scenario
  saprox status -brokers a1,a2 [-saproxd a]    scrape live /metrics endpoints and
                                               render leaders, ISR, replication
                                               lag, wire latency quantiles, the
                                               ingest plane's batch shape, and
                                               per-query error vs budget

run flags:
  -scale N     dataset scale multiplier (default 1.0)
  -seed N      RNG seed (default 42)
  -workers N   engine parallelism (default 4)

bench-broker flags:
  -records N       records per measurement (default 200000)
  -batch N         records per produce request (default 1000)
  -fetchers N      concurrent fetchers on the shared connection (default 4)
  -out FILE        result file (default BENCH_broker.json; "-" for stdout only)

bench-server flags:
  -events N        events per measurement (default 40000, min 20000:
                   the 3 windows each case waits on need ~20s of
                   ms-spaced event time)
  -partitions N    topic partitions = shards per query (default 4)
  -out FILE        result file (default BENCH_server.json; "-" for stdout only)
  -baseline FILE   gate items/s per (mode, queries) case against this
                   recorded result file (default: no gate)
  -max-regress F   max fractional items/s regression vs -baseline (default 0.30)

bench-cluster flags:
  -records N       records per measurement (default 100000)
  -batch N         records per produce request (default 1000)
  -partitions N    topic partitions (default 4)
  -out FILE        result file (default BENCH_cluster.json; "-" for stdout only)

bench-e2e flags:
  -events N        events per scenario (default 40000)
  -batch N         events per produce request (default 500)
  -partitions N    topic partitions (default 4)
  -scenario NAME   run one scenario only: baseline, leader-kill,
                   leader-blackhole, follower-stall, slow-disk (default: all)
  -reps N          repetitions per scenario; the best-throughput rep is
                   recorded whole (default 3)
  -out FILE        result file (default BENCH_e2e.json; "-" for stdout only)

status flags:
  -brokers a1,a2   broker ADMIN addresses (the brokerd -http listeners)
  -saproxd a       saproxd address for per-query status
  -timeout d       per-scrape HTTP timeout (default 2s)`)
}

func list() error {
	all := experiment.All()
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Println(id)
	}
	return nil
}

func runFigures(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "dataset scale multiplier")
	seed := fs.Uint64("seed", 42, "RNG seed")
	workers := fs.Int("workers", 4, "engine parallelism")
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned text")

	// Accept ids before flags: saprox run fig4a fig4b -scale 2.
	var ids []string
	rest := args
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		ids = append(ids, rest[0])
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if len(ids) == 0 {
		return fmt.Errorf("no figure ids given; try `saprox list`")
	}

	all := experiment.All()
	if len(ids) == 1 && ids[0] == "all" {
		ids = ids[:0]
		for id := range all {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	}
	opts := experiment.Options{Scale: *scale, Seed: *seed, Workers: *workers}
	for _, id := range ids {
		fn, ok := all[id]
		if !ok {
			return fmt.Errorf("unknown figure %q; try `saprox list`", id)
		}
		table, err := fn(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *asCSV {
			fmt.Print(table.CSV())
		} else {
			fmt.Println(table.Format())
		}
	}
	return nil
}
