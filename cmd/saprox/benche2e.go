package main

// saprox bench-e2e: the chaos benchmark runner. It stands up an
// in-process 3-broker cluster with EVERY byte — client→broker and
// broker→broker — routed through a faults.Proxy, runs a replay
// workload through a live approximate query, and injects one fault per
// scenario mid-stream: leader kill, leader blackhole (asymmetric
// partition, connections held open), follower stall, slow disk.
// Each scenario records produce throughput, p99 produce latency, the
// fault's recovery time, and the query's observed error against its
// reported bound, into a JSON file (BENCH_e2e.json at the repo root is
// the tracked baseline) — so robustness regressions (slower failover,
// wedged produces, broken error bounds under faults) are diffable
// across PRs exactly like performance ones.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/broker/storage"
	"streamapprox/internal/faults"
	"streamapprox/internal/obs"
	"streamapprox/internal/server"
)

// e2e cluster tuning: short deadlines everywhere — recovery time is
// governed by these, not by TCP keepalive.
const (
	e2eHeartbeat    = 20 * time.Millisecond
	e2eProbeTimeout = 250 * time.Millisecond
	e2eRPCTimeout   = 500 * time.Millisecond
)

// e2eCluster is a proxy-fronted in-process cluster: the peers map and
// every client seed carry the PROXY addresses, so blackholing proxy i
// is an asymmetric partition of member i.
type e2eCluster struct {
	brokers []*broker.Broker
	servers []*broker.Server
	nodes   []*broker.ClusterNode
	proxies []*faults.Proxy
	disks   []*faults.Disk
	ids     []string
	addrs   []string // proxy addresses
	dirs    []string
}

func startE2ECluster(members int, durable bool) (*e2eCluster, error) {
	ec := &e2eCluster{}
	peers := make(map[string]string, members)
	for i := 0; i < members; i++ {
		var cfg broker.StorageConfig
		var disk *faults.Disk
		if durable {
			dir, err := os.MkdirTemp("", "benche2e")
			if err != nil {
				ec.stop()
				return nil, err
			}
			ec.dirs = append(ec.dirs, dir)
			disk = faults.NewDisk(nil)
			cfg = broker.StorageConfig{Dir: dir, Policy: storage.SyncAlways, FS: disk}
		}
		b, err := broker.Open(cfg)
		if err != nil {
			ec.stop()
			return nil, err
		}
		srv, err := broker.Serve(b, "127.0.0.1:0")
		if err != nil {
			ec.stop()
			return nil, err
		}
		p, err := faults.NewProxy("127.0.0.1:0", srv.Addr())
		if err != nil {
			srv.Close()
			ec.stop()
			return nil, err
		}
		id := fmt.Sprintf("n%d", i)
		peers[id] = p.Addr()
		ec.brokers = append(ec.brokers, b)
		ec.servers = append(ec.servers, srv)
		ec.proxies = append(ec.proxies, p)
		ec.disks = append(ec.disks, disk)
		ec.ids = append(ec.ids, id)
		ec.addrs = append(ec.addrs, p.Addr())
	}
	for i := 0; i < members; i++ {
		node, err := broker.NewClusterNode(ec.brokers[i], broker.NodeConfig{
			ID:             ec.ids[i],
			Peers:          peers,
			Replicas:       2,
			MinISR:         2,
			HeartbeatEvery: e2eHeartbeat,
			FailAfter:      3,
			ProbeTimeout:   e2eProbeTimeout,
			RPCTimeout:     e2eRPCTimeout,
			DialTimeout:    e2eRPCTimeout,
		})
		if err != nil {
			ec.stop()
			return nil, err
		}
		ec.servers[i].AttachNode(node)
		ec.nodes = append(ec.nodes, node)
	}
	for _, n := range ec.nodes {
		n.Start()
	}
	return ec, nil
}

// kill crash-stops member i (its proxy stays up, so clients see dead
// connections, not vanished addresses).
func (ec *e2eCluster) kill(i int) {
	if ec.nodes[i] == nil {
		return
	}
	ec.nodes[i].Close()
	ec.servers[i].Close()
	ec.brokers[i].Close()
	ec.nodes[i] = nil
}

func (ec *e2eCluster) stop() {
	for i := range ec.servers {
		if i < len(ec.nodes) && ec.nodes[i] != nil {
			ec.nodes[i].Close()
			ec.nodes[i] = nil
		}
		ec.servers[i].Close()
		ec.brokers[i].Close()
	}
	for _, p := range ec.proxies {
		_ = p.Close()
	}
	for _, dir := range ec.dirs {
		_ = os.RemoveAll(dir)
	}
	ec.dirs = nil
}

func (ec *e2eCluster) indexOf(id string) int {
	for i, nid := range ec.ids {
		if nid == id {
			return i
		}
	}
	return -1
}

func (ec *e2eCluster) clientOptions() broker.ClusterClientOptions {
	return broker.ClusterClientOptions{
		Retries:        30,
		Backoff:        5 * time.Millisecond,
		DialTimeout:    e2eRPCTimeout,
		RequestTimeout: e2eRPCTimeout,
	}
}

// benchE2EScenario is one fault scenario's measurements.
type benchE2EScenario struct {
	Scenario string `json:"scenario"`
	// Produce-side numbers, fault window included.
	ItemsPerSec  float64 `json:"items_per_s"`
	ProduceP99Ms float64 `json:"produce_p99_ms"`
	ProduceMaxMs float64 `json:"produce_max_ms"`
	// RecoverySeconds is fault injection → the next produce that touches
	// the faulted partition completing (0 where no outage is expected).
	RecoverySeconds float64 `json:"recovery_seconds"`
	// Query-side accuracy: the live query's merged windows against exact
	// ground truth recomputed from the produced events.
	Windows            int     `json:"windows"`
	MeanRelErr         float64 `json:"mean_rel_err"`
	MaxRelErr          float64 `json:"max_rel_err"`
	ErrorBoundCoverage float64 `json:"error_bound_coverage"` // |est-exact| <= reported bound
}

type benchE2EResult struct {
	Bench      string             `json:"bench"`
	Go         string             `json:"go"`
	CPUs       int                `json:"cpus"`
	UnixNanos  int64              `json:"unix_nanos"`
	Events     int                `json:"events"`
	Batch      int                `json:"batch"`
	Parts      int                `json:"partitions"`
	Reps       int                `json:"reps"` // best-throughput rep recorded per scenario
	Fraction   float64            `json:"fraction"`
	Confidence int                `json:"confidence"`
	Scenarios  []benchE2EScenario `json:"scenarios"`
}

func runBenchE2E(args []string) error {
	fs := flag.NewFlagSet("bench-e2e", flag.ContinueOnError)
	events := fs.Int("events", 40000, "events per scenario")
	batch := fs.Int("batch", 500, "events per produce request")
	parts := fs.Int("partitions", 4, "topic partitions")
	out := fs.String("out", "BENCH_e2e.json", `result file ("-" for stdout only)`)
	only := fs.String("scenario", "", "run a single scenario (empty: all)")
	reps := fs.Int("reps", 3, "repetitions per scenario; the best-throughput rep is recorded")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *events < *batch || *batch < 1 || *parts < 1 || *reps < 1 {
		return fmt.Errorf("bench-e2e: need events >= batch >= 1, partitions >= 1 and reps >= 1")
	}

	res := benchE2EResult{
		Bench:      "e2e-chaos",
		Go:         runtime.Version(),
		CPUs:       runtime.NumCPU(),
		UnixNanos:  time.Now().UnixNano(),
		Events:     *events,
		Batch:      *batch,
		Parts:      *parts,
		Reps:       *reps,
		Fraction:   0.5,
		Confidence: 95,
	}
	scenarios := []string{"baseline", "leader-kill", "leader-blackhole", "follower-stall", "slow-disk"}
	blog := obs.New(os.Stderr, obs.LevelInfo).With("bench", "e2e", "run", obs.TraceHex(obs.NewTraceID()))
	for _, sc := range scenarios {
		if *only != "" && sc != *only {
			continue
		}
		blog.Info("scenario", "name", sc, "events", *events, "reps", *reps)
		// Best-of-reps: each rep runs on a fresh cluster, and the rep with
		// the highest produce throughput is recorded whole (paired metrics
		// come from the same run, never mixed across reps). This measures
		// the system's capability rather than the noisiest co-tenant.
		var s benchE2EScenario
		for r := 0; r < *reps; r++ {
			rep, err := runE2EScenario(sc, *events, *batch, *parts)
			if err != nil {
				return fmt.Errorf("bench-e2e %s (rep %d): %w", sc, r+1, err)
			}
			blog.Info("rep done", "name", sc, "rep", r+1,
				"items_per_s", fmt.Sprintf("%.0f", rep.ItemsPerSec))
			if r == 0 || rep.ItemsPerSec > s.ItemsPerSec {
				s = rep
			}
		}
		blog.Info("scenario done", "name", sc,
			"items_per_s", fmt.Sprintf("%.0f", s.ItemsPerSec),
			"p99_ms", fmt.Sprintf("%.1f", s.ProduceP99Ms),
			"recovery_s", fmt.Sprintf("%.2f", s.RecoverySeconds),
			"mean_rel_err", fmt.Sprintf("%.4f", s.MeanRelErr),
			"bound_coverage", fmt.Sprintf("%.2f", s.ErrorBoundCoverage))
		res.Scenarios = append(res.Scenarios, s)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	if *out != "-" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		blog.Info("wrote result", "file", *out)
	}
	return nil
}

// runE2EScenario runs one fault scenario end to end: replay workload →
// proxied cluster → live query, fault injected halfway through.
func runE2EScenario(scenario string, events, batch, parts int) (benchE2EScenario, error) {
	out := benchE2EScenario{Scenario: scenario}
	ec, err := startE2ECluster(3, scenario == "slow-disk")
	if err != nil {
		return out, err
	}
	defer ec.stop()
	cc, err := broker.DialClusterWithOptions(ec.addrs, ec.clientOptions())
	if err != nil {
		return out, err
	}
	defer func() { _ = cc.Close() }()
	if err := cc.CreateTopic("e2e", parts); err != nil {
		return out, err
	}

	srv, err := server.New(server.Config{
		Cluster: cc,
		DialShard: func() (broker.Cluster, error) {
			return broker.DialClusterWithOptions(ec.addrs, ec.clientOptions())
		},
		Topic:       "e2e",
		PollBackoff: time.Millisecond,
	})
	if err != nil {
		return out, err
	}
	defer srv.Close()
	const window, slide = 2 * time.Second, time.Second
	id, err := srv.Register(server.Spec{
		Kind: "sum", Window: window, Slide: slide, Fraction: 0.5, Confidence: 95, Seed: 11,
	})
	if err != nil {
		return out, err
	}

	evs := benchServerEvents(events)
	recs := make([]broker.Record, len(evs))
	for i, e := range evs {
		recs[i] = broker.FromEvent(e)
	}

	// Produce in batches, injecting the scenario's fault halfway; the
	// first produce AFTER the fault times the recovery (the routing
	// client retries through it, so its completion IS the recovery).
	latencies := make([]float64, 0, events/batch+1)
	faultBatch := (events / batch) / 2
	var faultAt time.Time
	start := time.Now()
	for off, bi := 0, 0; off < events; off, bi = off+batch, bi+1 {
		if bi == faultBatch {
			if faultAt, err = injectE2EFault(ec, cc, scenario); err != nil {
				return out, err
			}
		}
		n := batch
		if off+n > events {
			n = events - off
		}
		t0 := time.Now()
		if _, err := cc.Produce("e2e", recs[off:off+n]); err != nil {
			return out, fmt.Errorf("produce batch %d: %w", bi, err)
		}
		lat := time.Since(t0)
		latencies = append(latencies, float64(lat.Milliseconds()))
		if !faultAt.IsZero() && out.RecoverySeconds == 0 && bi >= faultBatch {
			out.RecoverySeconds = time.Since(faultAt).Seconds()
		}
	}
	elapsed := time.Since(start).Seconds()
	out.ItemsPerSec = float64(events) / elapsed
	sort.Float64s(latencies)
	out.ProduceP99Ms = latencies[(len(latencies)*99)/100-1]
	out.ProduceMaxMs = latencies[len(latencies)-1]
	if scenario == "baseline" || scenario == "slow-disk" {
		out.RecoverySeconds = 0 // no outage: latency tells the story
	}

	// Wait until the query has consumed every produced record (exactly
	// once — Stats counts deliveries, so an overshoot would show up as
	// records > events and fail the equality below).
	deadline := time.Now().Add(60 * time.Second)
	for {
		records, windows, ok := srv.Stats(id)
		if !ok {
			return out, fmt.Errorf("query vanished")
		}
		if records == int64(events) && windows >= 5 {
			break
		}
		if records > int64(events) {
			return out, fmt.Errorf("query consumed %d of %d produced records (duplication)", records, events)
		}
		if time.Now().After(deadline) {
			return out, fmt.Errorf("query consumed %d of %d records before deadline", records, events)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Pull the merged windows over the public API and score them against
	// exact ground truth recomputed from the replayed events.
	results, err := fetchResults(srv, id)
	if err != nil {
		return out, err
	}
	out.Windows = len(results)
	covered := 0
	for _, w := range results {
		var exact float64
		for _, e := range evs {
			if !e.Time.Before(w.Start) && e.Time.Before(w.Start.Add(window)) {
				exact += e.Value
			}
		}
		rel := math.Abs(w.Value-exact) / math.Max(math.Abs(exact), 1)
		out.MeanRelErr += rel
		if rel > out.MaxRelErr {
			out.MaxRelErr = rel
		}
		if math.Abs(w.Value-exact) <= w.Error {
			covered++
		}
	}
	if len(results) > 0 {
		out.MeanRelErr /= float64(len(results))
		out.ErrorBoundCoverage = float64(covered) / float64(len(results))
	}
	return out, nil
}

// injectE2EFault applies one scenario's fault and returns the injection
// time (zero when the scenario has no fault).
func injectE2EFault(ec *e2eCluster, cc *broker.ClusterClient, scenario string) (time.Time, error) {
	if scenario == "baseline" {
		return time.Time{}, nil
	}
	m, err := cc.Meta()
	if err != nil {
		return time.Time{}, err
	}
	leader := m.LeaderOf("e2e", 0)
	if leader == "" {
		return time.Time{}, fmt.Errorf("no leader for partition 0")
	}
	li := ec.indexOf(leader)
	switch scenario {
	case "leader-kill":
		ec.kill(li)
	case "leader-blackhole":
		ec.proxies[li].Set(faults.Both, faults.Faults{Blackhole: true})
	case "follower-stall":
		var follower string
		for _, r := range m.ReplicasOf("e2e", 0) {
			if r != leader {
				follower = r
				break
			}
		}
		if follower == "" {
			return time.Time{}, fmt.Errorf("no follower for partition 0")
		}
		ec.proxies[ec.indexOf(follower)].Set(faults.Both, faults.Faults{Blackhole: true})
	case "slow-disk":
		if ec.disks[li] == nil {
			return time.Time{}, fmt.Errorf("slow-disk scenario needs a durable cluster")
		}
		ec.disks[li].Set(faults.DiskFaults{SlowSync: 10 * time.Millisecond})
	default:
		return time.Time{}, fmt.Errorf("unknown scenario %q", scenario)
	}
	return time.Now(), nil
}

// fetchResults reads a query's merged windows through the HTTP API (the
// same surface saproxd serves), keeping the benchmark on public
// interfaces.
func fetchResults(srv *server.Server, id string) ([]server.MergedWindow, error) {
	req := httptest.NewRequest("GET", "/v1/queries/"+id+"/results", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		return nil, fmt.Errorf("results: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var out []server.MergedWindow
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return out, nil
}
