// Command replay feeds a synthetic case-study dataset into a broker at a
// controlled rate — the traffic replay tool of the paper's methodology
// (§6.1: replay starts at 2000 messages/second, 200 items per message,
// and is increased until the system under test saturates).
//
// Usage:
//
//	replay -dataset netflow|taxi|gaussian [-addr host:port] [-topic name]
//	       [-items N] [-rate msgs/sec] [-batch items-per-msg] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/obs"
	"streamapprox/internal/stream"
	"streamapprox/internal/workload"
	"streamapprox/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func run() error {
	dataset := flag.String("dataset", "netflow", "dataset: netflow, taxi or gaussian")
	addr := flag.String("addr", "127.0.0.1:9092", "broker address")
	topic := flag.String("topic", "stream", "target topic")
	items := flag.Int("items", 400000, "number of items to replay")
	rate := flag.Int("rate", 2000, "messages per second (0 = full speed)")
	batch := flag.Int("batch", 200, "items per message")
	seed := flag.Uint64("seed", 42, "RNG seed")
	flag.Parse()

	rng := xrand.New(*seed)
	var events []stream.Event
	switch *dataset {
	case "netflow":
		events = workload.NetFlowEvents(rng, *items, time.Duration(*items)*time.Millisecond)
	case "taxi":
		events = workload.TaxiEvents(rng, *items, time.Duration(*items)*time.Millisecond)
	case "gaussian":
		seconds := *items / 6000
		if seconds < 1 {
			seconds = 1
		}
		events = workload.Generate(rng, time.Duration(seconds)*time.Second,
			workload.PaperGaussian(2000, 2000, 2000)...)
	default:
		return fmt.Errorf("unknown dataset %q", *dataset)
	}

	// One run ID for the whole replay: stamped on the wire so broker-side
	// logs attribute this run's produces, and on every progress line so
	// the two sides grep together.
	runID := obs.NewTraceID()
	logger := obs.New(os.Stderr, obs.LevelInfo).With("daemon", "replay", "run", obs.TraceHex(runID))

	cli, err := broker.Dial(*addr)
	if err != nil {
		return err
	}
	defer func() { _ = cli.Close() }()
	cli.SetTraceID(runID)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	r := &workload.Replayer{MessagesPerSecond: *rate, ItemsPerMessage: *batch}
	logger.Info("replay starting", "dataset", *dataset, "items", len(events),
		"rate_msgs_per_s", *rate, "batch", *batch, "topic", *topic, "addr", *addr)
	start := time.Now()
	n, err := r.Replay(ctx, cli, *topic, events)
	elapsed := time.Since(start)
	logger.Info("replay finished", "items", n, "elapsed", elapsed.Round(time.Millisecond),
		"items_per_s", fmt.Sprintf("%.0f", float64(n)/elapsed.Seconds()))
	return err
}
