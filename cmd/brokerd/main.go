// Command brokerd runs the Kafka-like stream aggregator as a standalone
// TCP daemon (Figure 1's stream aggregator tier).
//
// Usage:
//
//	brokerd [-addr host:port] [-topic name] [-partitions N] [-json-only]
//
// The daemon pre-creates the given topic and serves until interrupted.
// -json-only disables the binary wire codec (clients fall back to the
// legacy JSON lockstep protocol), an escape hatch for debugging wire
// issues or emulating a pre-codec broker.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"streamapprox/internal/broker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9092", "listen address")
	topic := flag.String("topic", "stream", "topic to pre-create")
	partitions := flag.Int("partitions", 4, "partition count for the topic")
	jsonOnly := flag.Bool("json-only", false, "disable the binary wire codec (legacy JSON protocol only)")
	flag.Parse()

	b := broker.New()
	if err := b.CreateTopic(*topic, *partitions); err != nil {
		return err
	}
	srv, err := broker.ServeWithOptions(b, *addr, broker.ServerOptions{JSONOnly: *jsonOnly})
	if err != nil {
		return err
	}
	defer srv.Close()
	codec := "binary+json"
	if *jsonOnly {
		codec = "json-only"
	}
	fmt.Printf("brokerd listening on %s (topic %q, %d partitions, %s wire)\n",
		srv.Addr(), *topic, *partitions, codec)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("brokerd: shutting down")
	return nil
}
