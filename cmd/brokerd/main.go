// Command brokerd runs the Kafka-like stream aggregator as a standalone
// TCP daemon (Figure 1's stream aggregator tier), standalone or as one
// member of a replicated multi-broker cluster.
//
// Usage:
//
//	brokerd [-addr host:port] [-topic name] [-partitions N] [-json-only]
//	        [-data-dir path] [-fsync always|interval|none] [-fsync-every d]
//	        [-segment-records N]
//	        [-node-id id -peers id=host:port,id=host:port,...]
//	        [-replicas N] [-min-isr N] [-heartbeat d] [-fail-after N]
//	        [-dial-timeout d] [-probe-timeout d] [-rpc-timeout d]
//	        [-idle-timeout d] [-write-timeout d]
//	        [-http host:port] [-log-level debug|info|warn|error]
//
// With -http an admin listener serves /metrics (Prometheus text),
// /healthz (ISR-aware readiness) and net/http/pprof. Log output is
// structured key=value lines; -log-level debug additionally logs every
// traced wire request (see `saprox status` and the README's
// Observability section).
//
// The daemon pre-creates the given topic and serves until interrupted.
// -json-only disables the binary wire codec (clients fall back to the
// legacy JSON lockstep protocol), an escape hatch for debugging wire
// issues or emulating a pre-codec broker.
//
// With -data-dir the partition logs are DURABLE: segmented append-only
// files with CRC-framed records, fsynced per -fsync, recovered (with
// torn tails truncated) on the next start. Without it everything is
// in-memory and dies with the process.
//
// With -node-id and -peers the daemon joins a broker cluster: partition
// placement is rendezvous-hashed over the member list, each partition's
// leader streams appended chunks to its followers (`-replicas` copies,
// produce acked after `-min-isr` of them), and when a member dies its
// partitions fail over to the next live replica. Every member must be
// started with the same -peers map and the same topic flags. Point
// producers and saproxd at any subset of members (`saproxd -brokers`).
// A killed member restarted with the same -node-id and -data-dir
// recovers its logs, rejoins the running cluster as a follower,
// truncates any divergence back to the committed watermark, catches up
// and re-enters the ISR.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/broker/storage"
	"streamapprox/internal/metrics"
	"streamapprox/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
}

// parsePeers parses "id=host:port,id=host:port,..." into a member map.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", id)
		}
		peers[id] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("empty -peers")
	}
	return peers, nil
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9092", "listen address")
	topic := flag.String("topic", "stream", "topic to pre-create")
	partitions := flag.Int("partitions", 4, "partition count for the topic")
	jsonOnly := flag.Bool("json-only", false, "disable the binary wire codec (legacy JSON protocol only)")
	dataDir := flag.String("data-dir", "", "directory for durable partition logs (empty: in-memory)")
	fsyncFlag := flag.String("fsync", "always", "fsync policy for appended records: always, interval or none")
	fsyncEvery := flag.Duration("fsync-every", 50*time.Millisecond, "flush period with -fsync interval")
	segRecords := flag.Int("segment-records", 0, "records per segment file (0: default 4096)")
	nodeID := flag.String("node-id", "", "cluster member id (empty: standalone)")
	peersFlag := flag.String("peers", "", "full cluster member map id=host:port,... (must include -node-id)")
	replicas := flag.Int("replicas", 2, "replication factor per partition (cluster mode)")
	minISR := flag.Int("min-isr", 0, "replicas that must ack a produce, counting the leader (0: = -replicas)")
	heartbeat := flag.Duration("heartbeat", 250*time.Millisecond, "peer heartbeat interval (cluster mode)")
	failAfter := flag.Int("fail-after", 3, "consecutive failed probes before a peer is declared dead")
	dialTimeout := flag.Duration("dial-timeout", broker.DefaultDialTimeout, "TCP connect bound for node-to-node dials")
	probeTimeout := flag.Duration("probe-timeout", 0, "deadline for one heartbeat probe RPC (0: 4x -heartbeat, min 1s)")
	rpcTimeout := flag.Duration("rpc-timeout", 10*time.Second, "deadline for replication and other peer RPCs")
	idleTimeout := flag.Duration("idle-timeout", 0, "close client connections idle this long (0: never)")
	writeTimeout := flag.Duration("write-timeout", broker.DefaultWriteTimeout, "deadline for writing a response burst to a client")
	httpAddr := flag.String("http", "", "admin listen address for /metrics, /healthz and pprof (empty: disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.New(os.Stdout, level).With("daemon", "brokerd")

	policy, err := storage.ParseSyncPolicy(*fsyncFlag)
	if err != nil {
		return err
	}
	b, err := broker.Open(broker.StorageConfig{
		Dir:            *dataDir,
		Policy:         policy,
		SyncEvery:      *fsyncEvery,
		SegmentRecords: *segRecords,
	})
	if err != nil {
		return err
	}
	// On a restart the topic is recovered from the data directory; a
	// partition count that disagrees with the flags is an operator
	// error better caught at boot than as mysterious routing failures.
	if err := b.CreateTopic(*topic, *partitions); err != nil {
		if !errors.Is(err, broker.ErrTopicExists) {
			return err
		}
		if n, err := b.Partitions(*topic); err != nil {
			return err
		} else if n != *partitions {
			return fmt.Errorf("recovered topic %q has %d partitions but -partitions is %d; match the flag or use a fresh -data-dir", *topic, n, *partitions)
		}
	}

	var node *broker.ClusterNode
	if *nodeID != "" {
		if *jsonOnly {
			// Replication runs over the binary codec; a JSON-only member
			// would look alive (pings work) yet fail every replicate.
			return fmt.Errorf("-json-only cannot be combined with cluster mode (-node-id)")
		}
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		node, err = broker.NewClusterNode(b, broker.NodeConfig{
			ID:             *nodeID,
			Peers:          peers,
			Replicas:       *replicas,
			MinISR:         *minISR,
			HeartbeatEvery: *heartbeat,
			FailAfter:      *failAfter,
			DialTimeout:    *dialTimeout,
			ProbeTimeout:   *probeTimeout,
			RPCTimeout:     *rpcTimeout,
			Logf:           logger.With("node", *nodeID).Logf,
		})
		if err != nil {
			return err
		}
	} else if *peersFlag != "" {
		return fmt.Errorf("-peers requires -node-id")
	}

	// Identity gauge: lets scrapers (saprox status) map a /metrics
	// endpoint back to a cluster member id.
	info := "standalone"
	if *nodeID != "" {
		info = *nodeID
	}
	b.Metrics().Gauge("broker_info",
		"Always 1; the node label identifies this broker.",
		metrics.Labels{"node": info}).Set(1)
	if node != nil {
		node.RegisterMetrics(b.Metrics())
	}

	srv, err := broker.ServeWithOptions(b, *addr, broker.ServerOptions{
		JSONOnly:     *jsonOnly,
		Node:         node,
		Metrics:      b.Metrics(),
		Log:          logger,
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	if node != nil {
		node.Start()
		defer node.Close()
	}

	var admin *http.Server
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		admin = &http.Server{Handler: broker.AdminHandler(b, node)}
		go func() {
			if err := admin.Serve(ln); err != nil && err != http.ErrServerClosed {
				logger.Error("admin listener failed", "err", err)
			}
		}()
		defer admin.Close()
		logger.Info("admin listening", "addr", ln.Addr().String())
	}

	codec := "binary+json"
	if *jsonOnly {
		codec = "json-only"
	}
	store := "in-memory"
	if *dataDir != "" {
		store = fmt.Sprintf("durable %s (fsync %s)", *dataDir, policy)
	}
	kv := []any{"addr", srv.Addr(), "topic", *topic, "partitions", *partitions, "wire", codec, "storage", store}
	if node != nil {
		kv = append(kv, "node", *nodeID, "replicas", *replicas)
	}
	logger.Info("listening", kv...)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	return nil
}
