// Command brokerd runs the Kafka-like stream aggregator as a standalone
// TCP daemon (Figure 1's stream aggregator tier), standalone or as one
// member of a replicated multi-broker cluster.
//
// Usage:
//
//	brokerd [-addr host:port] [-topic name] [-partitions N] [-json-only]
//	        [-node-id id -peers id=host:port,id=host:port,...]
//	        [-replicas N] [-min-isr N] [-heartbeat d] [-fail-after N]
//
// The daemon pre-creates the given topic and serves until interrupted.
// -json-only disables the binary wire codec (clients fall back to the
// legacy JSON lockstep protocol), an escape hatch for debugging wire
// issues or emulating a pre-codec broker.
//
// With -node-id and -peers the daemon joins a broker cluster: partition
// placement is rendezvous-hashed over the member list, each partition's
// leader streams appended chunks to its followers (`-replicas` copies,
// produce acked after `-min-isr` of them), and when a member dies its
// partitions fail over to the next live replica. Every member must be
// started with the same -peers map and the same topic flags. Point
// producers and saproxd at any subset of members (`saproxd -brokers`).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamapprox/internal/broker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
}

// parsePeers parses "id=host:port,id=host:port,..." into a member map.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", id)
		}
		peers[id] = addr
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("empty -peers")
	}
	return peers, nil
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9092", "listen address")
	topic := flag.String("topic", "stream", "topic to pre-create")
	partitions := flag.Int("partitions", 4, "partition count for the topic")
	jsonOnly := flag.Bool("json-only", false, "disable the binary wire codec (legacy JSON protocol only)")
	nodeID := flag.String("node-id", "", "cluster member id (empty: standalone)")
	peersFlag := flag.String("peers", "", "full cluster member map id=host:port,... (must include -node-id)")
	replicas := flag.Int("replicas", 2, "replication factor per partition (cluster mode)")
	minISR := flag.Int("min-isr", 0, "replicas that must ack a produce, counting the leader (0: = -replicas)")
	heartbeat := flag.Duration("heartbeat", 250*time.Millisecond, "peer heartbeat interval (cluster mode)")
	failAfter := flag.Int("fail-after", 3, "consecutive failed probes before a peer is declared dead")
	flag.Parse()

	b := broker.New()
	if err := b.CreateTopic(*topic, *partitions); err != nil {
		return err
	}

	var node *broker.ClusterNode
	if *nodeID != "" {
		if *jsonOnly {
			// Replication runs over the binary codec; a JSON-only member
			// would look alive (pings work) yet fail every replicate.
			return fmt.Errorf("-json-only cannot be combined with cluster mode (-node-id)")
		}
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		logger := log.New(os.Stdout, "brokerd: ", log.LstdFlags)
		node, err = broker.NewClusterNode(b, broker.NodeConfig{
			ID:             *nodeID,
			Peers:          peers,
			Replicas:       *replicas,
			MinISR:         *minISR,
			HeartbeatEvery: *heartbeat,
			FailAfter:      *failAfter,
			Logf:           logger.Printf,
		})
		if err != nil {
			return err
		}
	} else if *peersFlag != "" {
		return fmt.Errorf("-peers requires -node-id")
	}

	srv, err := broker.ServeWithOptions(b, *addr, broker.ServerOptions{JSONOnly: *jsonOnly, Node: node})
	if err != nil {
		return err
	}
	defer srv.Close()
	if node != nil {
		node.Start()
		defer node.Close()
	}
	codec := "binary+json"
	if *jsonOnly {
		codec = "json-only"
	}
	if node != nil {
		fmt.Printf("brokerd %s listening on %s (topic %q, %d partitions, replicas %d, %s wire)\n",
			*nodeID, srv.Addr(), *topic, *partitions, *replicas, codec)
	} else {
		fmt.Printf("brokerd listening on %s (topic %q, %d partitions, %s wire)\n",
			srv.Addr(), *topic, *partitions, codec)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("brokerd: shutting down")
	return nil
}
