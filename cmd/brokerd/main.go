// Command brokerd runs the Kafka-like stream aggregator as a standalone
// TCP daemon (Figure 1's stream aggregator tier).
//
// Usage:
//
//	brokerd [-addr host:port] [-topic name] [-partitions N]
//
// The daemon pre-creates the given topic and serves until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"streamapprox/internal/broker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9092", "listen address")
	topic := flag.String("topic", "stream", "topic to pre-create")
	partitions := flag.Int("partitions", 4, "partition count for the topic")
	flag.Parse()

	b := broker.New()
	if err := b.CreateTopic(*topic, *partitions); err != nil {
		return err
	}
	srv, err := broker.Serve(b, *addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("brokerd listening on %s (topic %q, %d partitions)\n",
		srv.Addr(), *topic, *partitions)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("brokerd: shutting down")
	return nil
}
