// Command saproxd runs the sharded, multi-tenant approximate-query
// service: a shared ingest plane consumes a brokerd topic with exactly
// one prefetching consumer per partition — however many queries are
// registered — fans every batch out to all of them, and serves each
// query's merged per-window "result ± error" stream over HTTP.
//
// Usage:
//
//	saproxd [-addr host:port] [-broker host:port | -brokers h1,h2,...]
//	        [-topic name]
//	        [-group name] [-checkpoint-dir dir] [-checkpoint-every d]
//	        [-budget items/s] [-schedule-every d] [-per-query-ingest]
//	        [-connect-wait d]
//
// The initial broker connection is retried with capped backoff (forever
// by default; bound it with -connect-wait), so saproxd can be started
// before its cluster in an ordering-free bring-up.
//
// With -brokers the daemon consumes a replicated broker CLUSTER through
// the routing client: fetches go to each partition's current leader,
// NotLeader redirects are followed, and a broker failover is absorbed
// without losing or duplicating any query's windows. A single address
// works too (including a plain non-clustered brokerd).
//
// API:
//
//	POST   /v1/queries              register {"kind":"mean","window":"10s",...}
//	GET    /v1/queries              list registered queries
//	GET    /v1/queries/{id}         one query's spec and shard counters
//	DELETE /v1/queries/{id}         flush and remove a query
//	GET    /v1/queries/{id}/results?since=N   poll merged windows
//	GET    /v1/queries/{id}/stream  NDJSON stream of merged windows
//	GET    /healthz                 liveness
//	GET    /metrics                 Prometheus text exposition
//
// With -budget set, a cross-query scheduler apportions that global
// sample budget (total sampled items per second) over the registered
// queries every -schedule-every, growing starved queries' fractions
// and shrinking over-achieving ones.
//
// With -checkpoint-dir set, the shared partition offsets, each query's
// delivery watermarks and Session snapshots, and partially merged
// windows are checkpointed periodically and restored on restart, so a
// killed daemon resumes where it left off.
//
// On SIGTERM/SIGINT the daemon shuts down gracefully: it stops
// accepting HTTP work, quiesces the ingest plane, finishes in-flight
// merges, flushes every query's checkpoint, and only then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/obs"
	"streamapprox/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "saproxd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9090", "HTTP listen address")
	brokerAddr := flag.String("broker", "127.0.0.1:9092", "brokerd address")
	brokersFlag := flag.String("brokers", "", "comma-separated broker cluster addresses (overrides -broker)")
	topic := flag.String("topic", "stream", "topic to consume")
	group := flag.String("group", "saproxd", "consumer-group prefix")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for shard checkpoints (empty disables)")
	checkpointEvery := flag.Duration("checkpoint-every", 5*time.Second, "checkpoint interval")
	globalBudget := flag.Float64("budget", 0, "global sample budget in items/s across all queries (0 disables the scheduler)")
	scheduleEvery := flag.Duration("schedule-every", 2*time.Second, "budget scheduler control interval")
	perQueryIngest := flag.Bool("per-query-ingest", false, "one private consumer set per query instead of the shared ingest plane (baseline mode)")
	connectWait := flag.Duration("connect-wait", 0, "keep retrying the initial broker connection for this long before giving up (0: forever)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := obs.New(os.Stdout, level).With("daemon", "saproxd")

	// Catch shutdown signals before the connect loop, so an operator can
	// interrupt a daemon still waiting for its cluster to come up.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// One routing (or plain) client for control + catch-up work, plus a
	// DialShard factory handing each ingest partition loop its own
	// connection so partition fetches run in parallel.
	var (
		cli       broker.Cluster
		closeCli  func()
		dialShard func() (broker.Cluster, error)
	)
	dialOnce := func() error {
		if *brokersFlag != "" {
			addrs := strings.Split(*brokersFlag, ",")
			for i := range addrs {
				addrs[i] = strings.TrimSpace(addrs[i])
			}
			cc, err := broker.DialCluster(addrs)
			if err != nil {
				return err
			}
			cli = cc
			closeCli = func() { _ = cc.Close() }
			dialShard = func() (broker.Cluster, error) { return broker.DialCluster(addrs) }
			return nil
		}
		c, err := broker.Dial(*brokerAddr)
		if err != nil {
			return err
		}
		cli = c
		closeCli = func() { _ = c.Close() }
		dialShard = func() (broker.Cluster, error) { return broker.Dial(*brokerAddr) }
		return nil
	}
	// Retry the initial connection with capped backoff instead of
	// exiting: in a compose-style bring-up the cluster may simply not be
	// listening yet, and start order should not matter.
	start := time.Now()
	for backoff := 250 * time.Millisecond; ; {
		err := dialOnce()
		if err == nil {
			break
		}
		if *connectWait > 0 && time.Since(start) >= *connectWait {
			return fmt.Errorf("broker not reachable after %v: %w", *connectWait, err)
		}
		logger.Warn("broker not reachable; retrying", "err", err, "backoff", backoff)
		t := time.NewTimer(backoff)
		select {
		case s := <-sig:
			t.Stop()
			logger.Info("shutting down before broker came up", "signal", s)
			return nil
		case <-t.C:
		}
		if backoff < 5*time.Second {
			backoff *= 2
			if backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
		}
	}
	defer closeCli()

	srv, err := server.New(server.Config{
		Cluster:         cli,
		DialShard:       dialShard,
		Topic:           *topic,
		Group:           *group,
		CheckpointDir:   *checkpointDir,
		CheckpointEvery: *checkpointEvery,
		GlobalBudget:    *globalBudget,
		ScheduleEvery:   *scheduleEvery,
		PerQueryIngest:  *perQueryIngest,
		Logf:            logger.Logf,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	// Wrap the API handler with the standard pprof endpoints so a live
	// saproxd can be profiled without a separate listener.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	mode := "shared ingest plane"
	if *perQueryIngest {
		mode = "per-query ingest (baseline)"
	}
	brokerDesc := *brokerAddr
	if *brokersFlag != "" {
		brokerDesc = "cluster " + *brokersFlag
	}
	logger.Info("serving", "addr", *addr, "broker", brokerDesc, "topic", *topic,
		"partitions", srv.Partitions(), "mode", mode)
	if *globalBudget > 0 {
		logger.Info("budget scheduler enabled", "items_per_s", *globalBudget, "reapportion_every", *scheduleEvery)
	}

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		logger.Info("shutting down", "signal", s)
	}
	// Graceful order: stop accepting HTTP work, then let srv.Close
	// quiesce the ingest plane, finish in-flight merges, and flush
	// every query's checkpoint (plus the shared plane offsets) before
	// the process exits — nothing mid-merge is dropped.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	srv.Close()
	logger.Info("checkpoints flushed; bye")
	return nil
}
