// Command saproxd runs the sharded, multi-tenant approximate-query
// service: it consumes a brokerd topic with one OASRS worker per
// partition and serves registered queries' merged per-window
// "result ± error" streams over HTTP.
//
// Usage:
//
//	saproxd [-addr host:port] [-broker host:port] [-topic name]
//	        [-group name] [-checkpoint-dir dir] [-checkpoint-every d]
//
// API:
//
//	POST   /v1/queries              register {"kind":"mean","window":"10s",...}
//	GET    /v1/queries              list registered queries
//	GET    /v1/queries/{id}         one query's spec and shard counters
//	DELETE /v1/queries/{id}         flush and remove a query
//	GET    /v1/queries/{id}/results?since=N   poll merged windows
//	GET    /v1/queries/{id}/stream  NDJSON stream of merged windows
//	GET    /healthz                 liveness
//	GET    /metrics                 Prometheus text exposition
//
// With -checkpoint-dir set, shard sessions, consumer offsets and
// partially merged windows are checkpointed periodically and restored on
// restart, so a killed daemon resumes where it left off.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "saproxd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9090", "HTTP listen address")
	brokerAddr := flag.String("broker", "127.0.0.1:9092", "brokerd address")
	topic := flag.String("topic", "stream", "topic to consume")
	group := flag.String("group", "saproxd", "consumer-group prefix")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for shard checkpoints (empty disables)")
	checkpointEvery := flag.Duration("checkpoint-every", 5*time.Second, "checkpoint interval")
	flag.Parse()

	cli, err := broker.Dial(*brokerAddr)
	if err != nil {
		return err
	}
	defer func() { _ = cli.Close() }()

	logger := log.New(os.Stdout, "saproxd: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		Cluster: cli,
		// One TCP connection per shard worker so partition fetches run
		// in parallel instead of serializing on a shared client.
		DialShard:       func() (broker.Cluster, error) { return broker.Dial(*brokerAddr) },
		Topic:           *topic,
		Group:           *group,
		CheckpointDir:   *checkpointDir,
		CheckpointEvery: *checkpointEvery,
		Logf:            logger.Printf,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	logger.Printf("serving on %s (broker %s, topic %q, %d partitions)",
		*addr, *brokerAddr, *topic, srv.Partitions())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
	}
	logger.Printf("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	return nil
}
