package streamapprox

import (
	"math"
	"sync"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/stream"
	"streamapprox/internal/workload"
	"streamapprox/internal/xrand"
)

// TestEndToEndBrokerToSession exercises the full Figure-1 path: events
// are produced to the Kafka-like aggregator over TCP, consumed by a
// consumer group, pushed through an OASRS Session, and the per-window
// estimates are checked against ground truth.
func TestEndToEndBrokerToSession(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("stream", 4); err != nil {
		t.Fatal(err)
	}
	srv, err := broker.Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Produce the synthetic Gaussian workload over TCP in paper-style
	// 200-item messages.
	rng := xrand.New(7)
	events := workload.Generate(rng, 20*time.Second, workload.PaperGaussian(500, 500, 500)...)
	cli, err := broker.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	for start := 0; start < len(events); start += 200 {
		end := start + 200
		if end > len(events) {
			end = len(events)
		}
		recs := make([]broker.Record, end-start)
		for i, e := range events[start:end] {
			recs[i] = broker.FromEvent(e)
		}
		if _, err := cli.Produce("stream", recs); err != nil {
			t.Fatal(err)
		}
	}

	// Consume (in-process consumer against the same broker) and stream
	// into a Session.
	consumer, err := broker.NewConsumer(b, "analytics", "stream", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := broker.NewEventSource(consumer, 2, 0)
	session := NewSession(SessionConfig{Fraction: 0.5, Seed: 3})
	consumed := 0
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if err := session.Push(Event(e)); err != nil {
			t.Fatal(err)
		}
		consumed++
	}
	if consumed != len(events) {
		t.Fatalf("consumed %d of %d produced events", consumed, len(events))
	}
	results := session.Close()
	if len(results) < 3 {
		t.Fatalf("only %d windows", len(results))
	}

	// Ground truth straight from the generated events.
	exact, err := Exact(Config{}, toPublic(events))
	if err != nil {
		t.Fatal(err)
	}
	exactByStart := make(map[time.Time]float64, len(exact))
	for _, r := range exact {
		exactByStart[r.Start] = r.Overall.Value
	}
	checked := 0
	for _, r := range results {
		want, ok := exactByStart[r.Start]
		if !ok {
			continue
		}
		checked++
		if loss := math.Abs(r.Overall.Value-want) / want; loss > 0.08 {
			t.Errorf("window %v: estimate %v vs exact %v (loss %.3f)",
				r.Start, r.Overall.Value, want, loss)
		}
	}
	if checked < 3 {
		t.Fatalf("compared only %d windows", checked)
	}
}

func toPublic(in []stream.Event) []Event {
	out := make([]Event, len(in))
	for i, e := range in {
		out[i] = Event(e)
	}
	return out
}

// TestTCPConsumerGroupRebalanceFeedsTwoShards exercises the broker TCP
// transport end to end through a consumer-group "rebalance": a single
// member consumes part of a 4-partition topic and commits, then the
// group is re-formed as two members — each over its own TCP client —
// which resume from the committed offsets and feed two concurrent shard
// Sessions. No record may be lost or read twice across the rebalance.
func TestTCPConsumerGroupRebalanceFeedsTwoShards(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("stream", 4); err != nil {
		t.Fatal(err)
	}
	srv, err := broker.Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := xrand.New(23)
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	var events []stream.Event
	for i := 0; i < 10000; i++ {
		events = append(events, stream.Event{
			Stratum: string(rune('a' + i%11)),
			Value:   rng.Gaussian(100, 10),
			Time:    base.Add(time.Duration(i) * time.Millisecond),
		})
	}
	produce := func(cli *broker.Client, evs []stream.Event) {
		t.Helper()
		for start := 0; start < len(evs); start += 200 {
			end := start + 200
			if end > len(evs) {
				end = len(evs)
			}
			recs := make([]broker.Record, end-start)
			for i, e := range evs[start:end] {
				recs[i] = broker.FromEvent(e)
			}
			if _, err := cli.Produce("stream", recs); err != nil {
				t.Fatal(err)
			}
		}
	}

	producer, err := broker.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = producer.Close() }()
	if n, err := producer.Partitions("stream"); err != nil || n != 4 {
		t.Fatalf("remote partitions = %d, %v", n, err)
	}

	type key struct {
		part int
		off  int64
	}
	seen := make(map[key]bool)
	record := func(recs []broker.Record) {
		t.Helper()
		for _, r := range recs {
			k := key{r.Partition, r.Offset}
			if seen[k] {
				t.Fatalf("record (p=%d, off=%d) read twice across rebalance", r.Partition, r.Offset)
			}
			seen[k] = true
		}
	}

	// Generation 1: one member over TCP consumes the first batch of
	// records and commits its offsets.
	produce(producer, events[:3000])
	cli1, err := broker.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli1.Close() }()
	solo, err := broker.NewConsumer(cli1, "shards", "stream", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	gen1 := 0
	for {
		recs, err := solo.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		record(recs)
		gen1 += len(recs)
	}
	if gen1 != 3000 {
		t.Fatalf("generation 1 consumed %d of 3000", gen1)
	}
	if err := solo.Commit(); err != nil {
		t.Fatal(err)
	}

	// Rebalance: the group re-forms as two members, each on its own TCP
	// connection, after more records arrive. Each member feeds its own
	// concurrent shard Session.
	produce(producer, events[3000:])
	type shardOut struct {
		recs    []broker.Record
		windows int
		err     error
	}
	outs := make([]shardOut, 2)
	var wg sync.WaitGroup
	for member := 0; member < 2; member++ {
		wg.Add(1)
		go func(member int) {
			defer wg.Done()
			out := &outs[member]
			cli, err := broker.Dial(srv.Addr())
			if err != nil {
				out.err = err
				return
			}
			defer func() { _ = cli.Close() }()
			cons, err := broker.NewConsumer(cli, "shards", "stream", member, 2)
			if err != nil {
				out.err = err
				return
			}
			sess := NewSession(SessionConfig{
				WindowSize:  2 * time.Second,
				WindowSlide: time.Second,
				Fraction:    0.5,
				Seed:        uint64(member + 1),
			})
			src := broker.NewEventSource(cons, 3, 0)
			for {
				e, ok := src.Next()
				if !ok {
					break
				}
				if err := sess.Push(Event(e)); err != nil {
					out.err = err
					return
				}
			}
			out.windows = len(sess.Close())
			// Re-read the consumed span (committed gen-1 position up to
			// the final offset) for the exactly-once check.
			offs := cons.Offsets()
			for _, p := range cons.Partitions() {
				start, err := b.Committed("shards", "stream", p)
				if err != nil {
					out.err = err
					return
				}
				recs, err := b.Fetch("stream", p, start, int(offs[p]-start))
				if err != nil {
					out.err = err
					return
				}
				out.recs = append(out.recs, recs...)
			}
		}(member)
	}
	wg.Wait()

	gen2 := 0
	for member, out := range outs {
		if out.err != nil {
			t.Fatalf("member %d: %v", member, out.err)
		}
		if out.windows == 0 {
			t.Errorf("member %d produced no windows", member)
		}
		record(out.recs)
		gen2 += len(out.recs)
	}
	if gen1+gen2 != len(events) {
		t.Fatalf("consumed %d + %d records, want %d total (lost across rebalance)",
			gen1, gen2, len(events))
	}
	// Every partition/offset pair must have been covered exactly once.
	for p := 0; p < 4; p++ {
		hwm, err := b.HighWatermark("stream", p)
		if err != nil {
			t.Fatal(err)
		}
		for off := int64(0); off < hwm; off++ {
			if !seen[key{p, off}] {
				t.Fatalf("record (p=%d, off=%d) never consumed", p, off)
			}
		}
	}
}

// TestHistogramQuery exercises the histogram path through the public
// one-shot API.
func TestHistogramQuery(t *testing.T) {
	events := testEvents(t, 12)
	cfg := Config{
		Query:          Histogram,
		HistogramEdges: []float64{0, 100, 2000, 20000},
		Fraction:       0.5,
		Seed:           5,
	}
	rep, err := Run(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rep.Results {
		if len(r.Buckets) != 3 {
			t.Fatalf("window %d has %d buckets", i, len(r.Buckets))
		}
		for j, b := range r.Buckets {
			want := exact[i].Buckets[j].Count.Value
			if want == 0 {
				continue
			}
			if loss := math.Abs(b.Count.Value-want) / want; loss > 0.1 {
				t.Errorf("window %d bucket [%v,%v): %v vs %v",
					i, b.Lo, b.Hi, b.Count.Value, want)
			}
		}
	}
}

// TestSessionAutoStratify checks that k-means auto-stratification keeps
// estimates sane on an unlabeled bimodal stream: the clustering isolates
// the rare huge-value mode into its own stratum, which OASRS then never
// overlooks. (Quantile binning cannot isolate a 2% tail — its edges sit
// inside the bulk — so this workload specifically wants k-means.)
func TestSessionAutoStratify(t *testing.T) {
	rng := xrand.New(31)
	s := NewSession(SessionConfig{
		Fraction:  0.3,
		Stratify:  StratifyKMeans,
		StratifyK: 2,
		Seed:      6,
	})
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	var trueTotal float64
	var events []Event
	for ms := 0; ms < 30000; ms++ {
		v := rng.Gaussian(10, 2)
		if ms%50 == 0 {
			v = rng.Gaussian(100000, 500) // rare huge values
		}
		e := Event{Value: v, Time: base.Add(time.Duration(ms) * time.Millisecond)}
		events = append(events, e)
		trueTotal += v
	}
	for _, e := range events {
		if err := s.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	results := s.Close()
	if len(results) == 0 {
		t.Fatal("no windows")
	}
	// Sum the tumbling-equivalent: every event is in exactly 2 windows,
	// so Σ window sums = 2 × total (modulo stream edges).
	var estTotal float64
	for _, r := range results {
		estTotal += r.Overall.Value
	}
	if rel := math.Abs(estTotal/2-trueTotal) / trueTotal; rel > 0.05 {
		t.Errorf("auto-stratified total = %v, true %v (rel %.3f)", estTotal/2, trueTotal, rel)
	}
}
