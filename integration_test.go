package streamapprox

import (
	"math"
	"testing"
	"time"

	"streamapprox/internal/broker"
	"streamapprox/internal/stream"
	"streamapprox/internal/workload"
	"streamapprox/internal/xrand"
)

// TestEndToEndBrokerToSession exercises the full Figure-1 path: events
// are produced to the Kafka-like aggregator over TCP, consumed by a
// consumer group, pushed through an OASRS Session, and the per-window
// estimates are checked against ground truth.
func TestEndToEndBrokerToSession(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("stream", 4); err != nil {
		t.Fatal(err)
	}
	srv, err := broker.Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Produce the synthetic Gaussian workload over TCP in paper-style
	// 200-item messages.
	rng := xrand.New(7)
	events := workload.Generate(rng, 20*time.Second, workload.PaperGaussian(500, 500, 500)...)
	cli, err := broker.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	for start := 0; start < len(events); start += 200 {
		end := start + 200
		if end > len(events) {
			end = len(events)
		}
		recs := make([]broker.Record, end-start)
		for i, e := range events[start:end] {
			recs[i] = broker.FromEvent(e)
		}
		if _, err := cli.Produce("stream", recs); err != nil {
			t.Fatal(err)
		}
	}

	// Consume (in-process consumer against the same broker) and stream
	// into a Session.
	consumer, err := broker.NewConsumer(b, "analytics", "stream", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := broker.NewEventSource(consumer, 2, 0)
	session := NewSession(SessionConfig{Fraction: 0.5, Seed: 3})
	consumed := 0
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if err := session.Push(Event(e)); err != nil {
			t.Fatal(err)
		}
		consumed++
	}
	if consumed != len(events) {
		t.Fatalf("consumed %d of %d produced events", consumed, len(events))
	}
	results := session.Close()
	if len(results) < 3 {
		t.Fatalf("only %d windows", len(results))
	}

	// Ground truth straight from the generated events.
	exact, err := Exact(Config{}, toPublic(events))
	if err != nil {
		t.Fatal(err)
	}
	exactByStart := make(map[time.Time]float64, len(exact))
	for _, r := range exact {
		exactByStart[r.Start] = r.Overall.Value
	}
	checked := 0
	for _, r := range results {
		want, ok := exactByStart[r.Start]
		if !ok {
			continue
		}
		checked++
		if loss := math.Abs(r.Overall.Value-want) / want; loss > 0.08 {
			t.Errorf("window %v: estimate %v vs exact %v (loss %.3f)",
				r.Start, r.Overall.Value, want, loss)
		}
	}
	if checked < 3 {
		t.Fatalf("compared only %d windows", checked)
	}
}

func toPublic(in []stream.Event) []Event {
	out := make([]Event, len(in))
	for i, e := range in {
		out[i] = Event(e)
	}
	return out
}

// TestHistogramQuery exercises the histogram path through the public
// one-shot API.
func TestHistogramQuery(t *testing.T) {
	events := testEvents(t, 12)
	cfg := Config{
		Query:          Histogram,
		HistogramEdges: []float64{0, 100, 2000, 20000},
		Fraction:       0.5,
		Seed:           5,
	}
	rep, err := Run(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rep.Results {
		if len(r.Buckets) != 3 {
			t.Fatalf("window %d has %d buckets", i, len(r.Buckets))
		}
		for j, b := range r.Buckets {
			want := exact[i].Buckets[j].Count.Value
			if want == 0 {
				continue
			}
			if loss := math.Abs(b.Count.Value-want) / want; loss > 0.1 {
				t.Errorf("window %d bucket [%v,%v): %v vs %v",
					i, b.Lo, b.Hi, b.Count.Value, want)
			}
		}
	}
}

// TestSessionAutoStratify checks that k-means auto-stratification keeps
// estimates sane on an unlabeled bimodal stream: the clustering isolates
// the rare huge-value mode into its own stratum, which OASRS then never
// overlooks. (Quantile binning cannot isolate a 2% tail — its edges sit
// inside the bulk — so this workload specifically wants k-means.)
func TestSessionAutoStratify(t *testing.T) {
	rng := xrand.New(31)
	s := NewSession(SessionConfig{
		Fraction:  0.3,
		Stratify:  StratifyKMeans,
		StratifyK: 2,
		Seed:      6,
	})
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	var trueTotal float64
	var events []Event
	for ms := 0; ms < 30000; ms++ {
		v := rng.Gaussian(10, 2)
		if ms%50 == 0 {
			v = rng.Gaussian(100000, 500) // rare huge values
		}
		e := Event{Value: v, Time: base.Add(time.Duration(ms) * time.Millisecond)}
		events = append(events, e)
		trueTotal += v
	}
	for _, e := range events {
		if err := s.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	results := s.Close()
	if len(results) == 0 {
		t.Fatal("no windows")
	}
	// Sum the tumbling-equivalent: every event is in exactly 2 windows,
	// so Σ window sums = 2 × total (modulo stream edges).
	var estTotal float64
	for _, r := range results {
		estTotal += r.Overall.Value
	}
	if rel := math.Abs(estTotal/2-trueTotal) / trueTotal; rel > 0.05 {
		t.Errorf("auto-stratified total = %v, true %v (rel %.3f)", estTotal/2, trueTotal, rel)
	}
}
