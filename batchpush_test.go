package streamapprox

import (
	"streamapprox/internal/stream"

	"math/rand"
	"reflect"
	"testing"
	"time"
)

// These tests pin Session.PushBatch to Push: the vectorized
// window/stratum run segmentation must make exactly the scalar path's
// decisions — same segments, same late drops, same per-window item and
// sample counts — on any input, including late, duplicate-time, and
// zero-time records.

var batchBase = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// collect drains both sessions completely and returns their windows.
func runBoth(t *testing.T, cfg SessionConfig, events []Event, chunk func(i int) int) (scalar, batch []WindowResult, s1, s2 *Session) {
	t.Helper()
	s1 = NewSession(cfg)
	for _, e := range events {
		if err := s1.Push(e); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	s2 = NewSession(cfg)
	for i := 0; i < len(events); {
		j := i + chunk(i)
		if j <= i {
			j = i + 1
		}
		if j > len(events) {
			j = len(events)
		}
		b := NewEventBatch()
		for _, e := range events[i:j] {
			b.AppendEvent(stream.Event(e))
		}
		if err := s2.PushBatch(b, 0, b.Len()); err != nil {
			t.Fatalf("PushBatch: %v", err)
		}
		b.Release()
		scalar = append(scalar, s1.Poll()...)
		batch = append(batch, s2.Poll()...)
		i = j
	}
	scalar = append(scalar, s1.Close()...)
	batch = append(batch, s2.Close()...)
	return scalar, batch, s1, s2
}

// checkStructure compares the deterministic observables of two window
// streams (everything except which sampled items survived eviction).
func checkStructure(t *testing.T, scalar, batch []WindowResult) {
	t.Helper()
	if len(scalar) != len(batch) {
		t.Fatalf("window count: scalar %d, batch %d", len(scalar), len(batch))
	}
	for i := range scalar {
		a, b := scalar[i], batch[i]
		if !a.Start.Equal(b.Start) || !a.End.Equal(b.End) {
			t.Errorf("window %d bounds: scalar [%v,%v), batch [%v,%v)", i, a.Start, a.End, b.Start, b.End)
		}
		if a.Items != b.Items {
			t.Errorf("window %d items: scalar %d, batch %d", i, a.Items, b.Items)
		}
		if a.Sampled != b.Sampled {
			t.Errorf("window %d sampled: scalar %d, batch %d", i, a.Sampled, b.Sampled)
		}
	}
}

func randomEvents(rng *rand.Rand, n int) []Event {
	strata := []string{"a", "b", "c"}
	events := make([]Event, 0, n)
	t := batchBase
	for i := 0; i < n; i++ {
		// Mostly forward steps, occasional repeats and late stragglers.
		switch rng.Intn(10) {
		case 0:
			// late: behind the high-water mark
			events = append(events, Event{
				Stratum: strata[rng.Intn(3)], Value: float64(rng.Intn(100)),
				Time: t.Add(-time.Duration(1+rng.Intn(3000)) * time.Millisecond),
			})
			continue
		case 1:
			// duplicate timestamp
		default:
			t = t.Add(time.Duration(rng.Intn(400)) * time.Millisecond)
		}
		events = append(events, Event{
			Stratum: strata[rng.Intn(3)], Value: float64(rng.Intn(100)), Time: t,
		})
	}
	return events
}

func TestPushBatchMatchesPushStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := SessionConfig{WindowSize: 2 * time.Second, WindowSlide: time.Second, Fraction: 0.5}
	for trial := 0; trial < 30; trial++ {
		events := randomEvents(rng, 1500)
		scalar, batch, s1, s2 := runBoth(t, cfg, events, func(int) int { return 1 + rng.Intn(300) })
		checkStructure(t, scalar, batch)
		if s1.Late() != s2.Late() {
			t.Errorf("trial %d: late drops: scalar %d, batch %d", trial, s1.Late(), s2.Late())
		}
	}
}

// TestPushBatchExactWhenNothingEvicted removes the one source of
// randomness — reservoir eviction — by keeping every segment under the
// sampler's budget. The two paths must then produce byte-identical
// windows, estimates and groups included.
func TestPushBatchExactWhenNothingEvicted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := SessionConfig{
		WindowSize: 2 * time.Second, WindowSlide: time.Second,
		Fraction: 1, Query: Mean, Seed: 7,
	}
	// 40 events per one-second segment, single stratum: the bootstrap
	// budget (64) and every lastCount-derived budget (40) hold them all.
	var events []Event
	for seg := 0; seg < 20; seg++ {
		for k := 0; k < 40; k++ {
			events = append(events, Event{
				Stratum: "s", Value: rng.Float64() * 100,
				Time: batchBase.Add(time.Duration(seg)*time.Second + time.Duration(k*25)*time.Millisecond),
			})
		}
	}
	scalar, batch, _, _ := runBoth(t, cfg, events, func(int) int { return 1 + rng.Intn(97) })
	if !reflect.DeepEqual(scalar, batch) {
		t.Fatalf("windows diverged:\nscalar %+v\nbatch  %+v", scalar, batch)
	}
}

func TestPushBatchZeroTimeEvents(t *testing.T) {
	cfg := SessionConfig{WindowSize: 2 * time.Second, WindowSlide: time.Second}
	// Zero-time records before any watermark exercise the sentinel
	// fallback; after a real watermark they must count as late.
	events := []Event{
		{Stratum: "a", Value: 1},
		{Stratum: "a", Value: 2},
		{Stratum: "a", Value: 3, Time: batchBase},
		{Stratum: "a", Value: 4},
		{Stratum: "a", Value: 5, Time: batchBase.Add(time.Second)},
	}
	scalar, batch, s1, s2 := runBoth(t, cfg, events, func(int) int { return len(events) })
	checkStructure(t, scalar, batch)
	if s1.Late() != s2.Late() {
		t.Errorf("late drops: scalar %d, batch %d", s1.Late(), s2.Late())
	}
}

func TestPushBatchStratifiedFallback(t *testing.T) {
	// Sessions with a stratifier take the per-record path inside
	// PushBatch; the observable behavior must still match Push exactly.
	rng := rand.New(rand.NewSource(3))
	cfg := SessionConfig{
		WindowSize: 2 * time.Second, WindowSlide: time.Second,
		Stratify: StratifyQuantile, StratifyK: 3, Seed: 5,
	}
	events := randomEvents(rng, 800)
	scalar, batch, _, _ := runBoth(t, cfg, events, func(int) int { return 1 + rng.Intn(100) })
	checkStructure(t, scalar, batch)
}

func TestPushBatchRangeClamping(t *testing.T) {
	s := NewSession(SessionConfig{})
	b := NewEventBatch()
	defer b.Release()
	b.AppendEvent(stream.Event{Stratum: "a", Value: 1, Time: batchBase})
	if err := s.PushBatch(b, -5, 99); err != nil {
		t.Fatalf("PushBatch with out-of-range bounds: %v", err)
	}
	got := s.Close()
	if len(got) == 0 {
		t.Fatal("clamped push lost the record: no windows")
	}
	for _, wr := range got {
		// The default 10s/5s window puts the one segment in two
		// overlapping windows; each must carry the single record.
		if wr.Items != 1 {
			t.Fatalf("clamped push lost the record: %+v", got)
		}
	}
}

func TestPushBatchClosedSession(t *testing.T) {
	s := NewSession(SessionConfig{})
	s.Close()
	b := NewEventBatch()
	defer b.Release()
	b.AppendEvent(stream.Event{Stratum: "a", Value: 1, Time: batchBase})
	if err := s.PushBatch(b, 0, b.Len()); err != ErrClosedSession {
		t.Fatalf("PushBatch on closed session: err = %v, want ErrClosedSession", err)
	}
}

// FuzzPushBatchSegmentation feeds arbitrary byte-derived event streams
// through both paths and requires the deterministic observables to
// agree. Each input byte pair becomes one event: a signed time step (so
// the fuzzer reaches late-drop and duplicate-time interleavings) and a
// value/stratum selector.
func FuzzPushBatchSegmentation(f *testing.F) {
	f.Add([]byte{0, 0, 10, 1, 200, 2, 10, 3}, uint8(3))
	f.Add([]byte{255, 0, 1, 1, 255, 2, 128, 3, 0, 4}, uint8(1))
	f.Add([]byte{50, 50, 50, 50, 50, 50}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, chunkSeed uint8) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		strata := []string{"a", "b", "c", "d"}
		var events []Event
		tm := batchBase
		for i := 0; i+1 < len(data); i += 2 {
			step := time.Duration(int(data[i])-96) * 37 * time.Millisecond
			et := tm.Add(step)
			if et.After(tm) {
				tm = et
			}
			events = append(events, Event{
				Stratum: strata[int(data[i+1])%len(strata)],
				Value:   float64(data[i+1]),
				Time:    et,
			})
		}
		cfg := SessionConfig{WindowSize: 2 * time.Second, WindowSlide: time.Second, Fraction: 0.4}
		chunk := 1 + int(chunkSeed)%64
		scalar, batch, s1, s2 := runBoth(t, cfg, events, func(int) int { return chunk })
		checkStructure(t, scalar, batch)
		if s1.Late() != s2.Late() {
			t.Errorf("late drops: scalar %d, batch %d", s1.Late(), s2.Late())
		}
	})
}
