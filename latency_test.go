package streamapprox

import (
	"testing"
	"time"
)

// TestSessionTargetLatencyCapsBudget injects a fake clock that charges a
// fixed cost per sampler Add, and checks the latency cost function caps
// the per-segment sample budget at what fits the target.
func TestSessionTargetLatencyCapsBudget(t *testing.T) {
	s := NewSession(SessionConfig{
		Fraction:      1.0, // ask for everything; latency must cap it
		TargetLatency: time.Millisecond,
		Seed:          2,
	})
	// Fake clock: every Push's sampler work appears to take 10µs, so at
	// most ~100 items fit the 1ms target.
	var fake time.Time
	s.now = func() time.Time {
		fake = fake.Add(5 * time.Microsecond) // called twice per Push
		return fake
	}

	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	for sec := 0; sec < 30; sec++ {
		for k := 0; k < 1000; k++ {
			e := Event{
				Stratum: "s",
				Value:   1,
				Time:    base.Add(time.Duration(sec)*time.Second + time.Duration(k)*time.Millisecond),
			}
			if err := s.Push(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	results := s.Close()
	if len(results) < 3 {
		t.Fatalf("only %d windows", len(results))
	}
	// Skip the bootstrap windows; steady-state windows must be capped
	// well below the 10000 items they observe (2 segments x 5000).
	for _, r := range results[2 : len(results)-1] {
		if r.Sampled > 500 {
			t.Errorf("window %v sampled %d items; latency budget did not cap (~200 expected)",
				r.Start, r.Sampled)
		}
		if r.Sampled < 2 {
			t.Errorf("window %v sampled %d; budget collapsed", r.Start, r.Sampled)
		}
	}
}

// TestSessionTargetLatencySurvivesSnapshot ensures the config round-trips.
func TestSessionTargetLatencySurvivesSnapshot(t *testing.T) {
	s := NewSession(SessionConfig{TargetLatency: 5 * time.Millisecond, Seed: 3})
	_ = s.Push(Event{Stratum: "a", Value: 1, Time: time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)})
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.TargetLatency != 5*time.Millisecond {
		t.Errorf("TargetLatency = %v after restore", r.cfg.TargetLatency)
	}
	if r.latency == nil {
		t.Error("latency model not rebuilt after restore")
	}
}
