package streamapprox

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestSnapshotRestoreMidStream(t *testing.T) {
	events := testEvents(t, 30)
	half := len(events) / 2

	// Reference: one uninterrupted session.
	ref := NewSession(SessionConfig{Fraction: 0.5, Seed: 42})
	for _, e := range events {
		if err := ref.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Close()

	// Checkpointed: push half, snapshot, restore, push the rest.
	a := NewSession(SessionConfig{Fraction: 0.5, Seed: 42})
	for _, e := range events[:half] {
		if err := a.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	early := a.Poll()
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events[half:] {
		if err := b.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	got := append(early, b.Close()...)

	if len(got) != len(want) {
		t.Fatalf("restored run produced %d windows, reference %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Start.Equal(want[i].Start) {
			t.Fatalf("window %d start %v vs %v", i, got[i].Start, want[i].Start)
		}
		// Identical RNG state means bit-identical estimates.
		if got[i].Overall.Value != want[i].Overall.Value {
			t.Errorf("window %d: restored %v, reference %v",
				i, got[i].Overall.Value, want[i].Overall.Value)
		}
		if got[i].Items != want[i].Items {
			t.Errorf("window %d items: %d vs %d", i, got[i].Items, want[i].Items)
		}
	}
}

func TestSnapshotPreservesWatermarkAndLateness(t *testing.T) {
	s := NewSession(SessionConfig{Seed: 1})
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	_ = s.Push(Event{Stratum: "a", Value: 1, Time: base.Add(time.Minute)})
	_ = s.Push(Event{Stratum: "a", Value: 1, Time: base}) // late
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Late() != 1 {
		t.Errorf("restored Late = %d, want 1", r.Late())
	}
	// A late event after restore must still be dropped.
	_ = r.Push(Event{Stratum: "a", Value: 1, Time: base})
	if r.Late() != 2 {
		t.Errorf("watermark lost in snapshot: Late = %d, want 2", r.Late())
	}
}

func TestSnapshotPreservesAdaptiveFraction(t *testing.T) {
	s := NewSession(SessionConfig{Fraction: 0.05, TargetError: 1e-9, Seed: 2})
	for _, e := range testEvents(t, 20) {
		_ = s.Push(e)
	}
	_ = s.Poll()
	grown := s.Fraction()
	if grown <= 0.05 {
		t.Fatalf("precondition: fraction did not grow (%v)", grown)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Fraction()-grown) > 1e-12 {
		t.Errorf("restored fraction %v, want %v", r.Fraction(), grown)
	}
}

func TestSnapshotAutoStratifiedUnsupported(t *testing.T) {
	s := NewSession(SessionConfig{Stratify: StratifyQuantile, Seed: 3})
	_ = s.Push(Event{Stratum: "", Value: 1, Time: time.Now()})
	if _, err := s.Snapshot(); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Errorf("Snapshot on auto-stratified session: %v", err)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreSession([]byte("not json")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := RestoreSession([]byte(`{"version": 999}`)); err == nil {
		t.Error("future version accepted")
	}
}

func TestSnapshotCarriesPendingResults(t *testing.T) {
	s := NewSession(SessionConfig{Fraction: 0.5, Seed: 4})
	for _, e := range testEvents(t, 20) {
		_ = s.Push(e)
	}
	// Do NOT poll: ready results must survive the snapshot.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Poll(); len(got) == 0 {
		t.Error("ready window results lost in snapshot")
	}
}
